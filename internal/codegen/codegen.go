// Package codegen translates allocated IR into executable machine code.
//
// It realizes every decision of the allocation plan: temps live in their
// assigned registers or frame slots; callee-saved registers are saved and
// restored exactly where the shrink-wrap plan says; caller-saved registers
// holding values live across a call are saved/restored around it only when
// the callee (per its summary) may actually destroy them; and outgoing
// arguments are marshalled into the registers the callee expects — the
// paper's parameter-passing optimization falls out as vanished moves.
package codegen

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"chow88/internal/core"
	"chow88/internal/explain"
	"chow88/internal/faultinject"
	"chow88/internal/ir"
	"chow88/internal/mach"
	"chow88/internal/mcode"
	"chow88/internal/obs"
	"chow88/internal/regalloc"
)

// Generate produces a linked program image from the allocation plan.
//
// Every function's body is emitted independently of the others — emission
// reads only the (now frozen) plan and the oracle — so by default the bodies
// are generated concurrently and then linked in deterministic module order,
// which keeps the image byte-identical to sequential generation
// (pp.Mode.Sequential).
func Generate(pp *core.ProgramPlan) (*mcode.Program, error) {
	// Placement decisions journal at emission time; the degradation loop may
	// generate several times per compile, and only the last generation's
	// placements describe the shipped program, so earlier ones are dropped.
	explain.Current().DropPlacements()
	codes, err := EmitFuncs(pp)
	if err != nil {
		return nil, err
	}
	return Link(pp.Module, codes)
}

// FuncCode is one function's emitted body as a relocatable artifact:
// branch targets (J/BEQZ/BNEZ) are function-relative offsets, and call
// sites (JAL) carry the callee's 1-based module index in Imm until Link
// resolves them against the final layout. Because the body depends only on
// the function's own plan and its callees' published linkage, incremental
// recompilation can reuse a FuncCode verbatim whenever neither changed.
type FuncCode struct {
	Code      []mcode.Instr
	FrameSize int
	// Blocks records each basic block's start offset, function-relative,
	// in f.Blocks order.
	Blocks []mcode.BlockSpan
}

// EmitFunc generates one function's relocatable body from its plan.
func EmitFunc(pp *core.ProgramPlan, fp *core.FuncPlan) (*FuncCode, error) {
	g, err := emitOne(pp, fp)
	if err != nil {
		return nil, err
	}
	return g.funcCode()
}

// funcCode freezes the generator's buffer into a FuncCode, resolving the
// intra-function branch fixups to function-relative targets.
func (g *fngen) funcCode() (*FuncCode, error) {
	fc := &FuncCode{Code: g.code, FrameSize: g.frameSize}
	for _, fx := range g.fixes {
		start, ok := g.blockStart[fx.blk]
		if !ok {
			return nil, fmt.Errorf("codegen: unresolved block %s", fx.blk.Name)
		}
		fc.Code[fx.at].Target = start
	}
	for _, blk := range g.f.Blocks {
		fc.Blocks = append(fc.Blocks, mcode.BlockSpan{BlockID: blk.ID, Start: g.blockStart[blk]})
	}
	return fc, nil
}

// EmitFuncs emits every non-extern function's body (concurrently unless
// pp.Mode.Sequential), returning one FuncCode per module function, nil for
// externs. The first error in module order wins, for a deterministic
// message.
func EmitFuncs(pp *core.ProgramPlan) ([]*FuncCode, error) {
	os := obs.Current()
	codes := make([]*FuncCode, len(pp.Module.Funcs))
	errs := make([]error, len(pp.Module.Funcs))
	genOne := func(tid, i int) {
		f := pp.Module.Funcs[i]
		if f.Extern {
			return
		}
		fp := pp.Funcs[f]
		if fp == nil {
			errs[i] = &FuncError{Func: f.Name, Err: fmt.Errorf("no plan recorded")}
			return
		}
		sp := os.SpanTID(obs.PhaseCodegen, f.Name, tid)
		fc, err := EmitFunc(pp, fp)
		sp.End()
		if err != nil {
			errs[i] = err
			return
		}
		codes[i] = fc
		os.Add(obs.CCodegenFuncs, 1)
	}
	if workers := runtime.GOMAXPROCS(0); workers > 1 && !pp.Mode.Sequential {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		if workers > len(pp.Module.Funcs) {
			workers = len(pp.Module.Funcs)
		}
		os.SetMax(obs.GCodegenWorkers, int64(workers))
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(tid int) {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i >= len(pp.Module.Funcs) {
						return
					}
					genOne(tid, i)
				}
			}(w + 1)
		}
		wg.Wait()
	} else {
		for i := range pp.Module.Funcs {
			genOne(0, i)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return codes, nil
}

// FuncError attributes a code-generation failure to one function, so the
// pipeline can degrade just that procedure instead of failing the module.
type FuncError struct {
	Func string
	// Recovered marks an error recovered from a worker panic (only under
	// Mode.Validate; without validation panics propagate as before).
	Recovered bool
	Err       error
}

func (e *FuncError) Error() string {
	if e.Recovered {
		return fmt.Sprintf("codegen %s: recovered panic: %v", e.Func, e.Err)
	}
	return fmt.Sprintf("codegen %s: %v", e.Func, e.Err)
}

func (e *FuncError) Unwrap() error { return e.Err }

// emitOne generates one function body. Under Mode.Validate a worker panic
// is contained and surfaced as a *FuncError for graceful degradation.
func emitOne(pp *core.ProgramPlan, fp *core.FuncPlan) (g *fngen, err error) {
	if pp.Mode.Validate {
		defer func() {
			if r := recover(); r != nil {
				obs.Current().Add(obs.CCheckPanics, 1)
				g = nil
				err = &FuncError{Func: fp.F.Name, Recovered: true, Err: fmt.Errorf("%v", r)}
			}
		}()
	}
	faultinject.PanicCodegen(fp.F.Name)
	g = newFngen(pp, fp)
	if e := g.run(); e != nil {
		return nil, &FuncError{Func: fp.F.Name, Err: e}
	}
	return g, nil
}

// Link concatenates the emitted bodies in module order (one FuncCode per
// m.Funcs entry, nil for externs) and resolves cross-function references.
// The FuncCodes are read-only: relocation copies each instruction, so the
// same artifacts can be relinked into later images (incremental builds).
func Link(m *ir.Module, codes []*FuncCode) (*mcode.Program, error) {
	os := obs.Current()
	linkSpan := os.Span(obs.PhaseLink, "link")
	defer linkSpan.End()
	prog := &mcode.Program{DataSize: m.DataSize()}

	// Startup stub: call main, then exit.
	prog.Code = append(prog.Code, mcode.Instr{Op: mcode.JAL}, mcode.Instr{Op: mcode.EXIT})

	for i, f := range m.Funcs {
		fi := &mcode.FuncInfo{Name: f.Name, Extern: f.Extern}
		prog.Funcs = append(prog.Funcs, fi)
		if f.Extern {
			fi.Entry = -1
			continue
		}
		fc := codes[i]
		if fc == nil {
			return nil, &FuncError{Func: f.Name, Err: fmt.Errorf("no code emitted")}
		}
		fi.Entry = len(prog.Code)
		fi.FrameSize = fc.FrameSize
		for _, in := range fc.Code {
			switch in.Op {
			case mcode.J, mcode.BEQZ, mcode.BNEZ:
				in.Target += fi.Entry
			}
			prog.Code = append(prog.Code, in)
		}
		fi.End = len(prog.Code)
		for _, bs := range fc.Blocks {
			fi.Blocks = append(fi.Blocks, mcode.BlockSpan{BlockID: bs.BlockID, Start: fi.Entry + bs.Start})
		}
	}

	// Resolve JAL targets (the startup stub, Imm 0, is skipped here and
	// pointed at main below).
	for i := range prog.Code {
		in := &prog.Code[i]
		if in.Op == mcode.JAL && in.Imm != 0 {
			idx := int(in.Imm) - 1
			if idx < 0 || idx >= len(prog.Funcs) {
				return nil, fmt.Errorf("codegen: jal to unknown function %d", in.Imm)
			}
			// Calls to extern functions trap at run time (as in the
			// interpreter); jumping to -1 leaves the code image.
			in.Target = prog.Funcs[idx].Entry
		}
	}
	// The stub calls main.
	mainIdx := -1
	for i, f := range m.Funcs {
		if f.Name == "main" {
			mainIdx = i
		}
	}
	if mainIdx < 0 {
		return nil, fmt.Errorf("codegen: no main")
	}
	prog.Code[0].Target = prog.Funcs[mainIdx].Entry
	// Static link-time check: a malformed image (bad target, bad register
	// field) fails here rather than trapping mid-run in the simulator.
	if err := mcode.Verify(prog); err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	os.Add(obs.CLinkCodeWords, int64(len(prog.Code)))
	return prog, nil
}

type fixup struct {
	at  int // index into g.code
	blk *ir.Block
}

type fngen struct {
	pp  *core.ProgramPlan
	fp  *core.FuncPlan
	f   *ir.Func
	cfg *mach.Config

	code       []mcode.Instr
	blockStart map[*ir.Block]int
	fixes      []fixup

	frameSize int
	outArgs   int
	arrOffset map[*ir.LocalArray]int
	tempHome  map[int]int // temp ID -> frame offset (memory temps)
	// saveSlot holds the preserved-on-entry values of callee-saved
	// registers (the shrink-wrap plan); callSlot holds transient
	// around-call saves of live values. A register may need both at once —
	// its caller's original value and a current live value — so the pools
	// are disjoint.
	saveSlot   map[mach.Reg]int
	callSlot   map[mach.Reg]int
	raSlot     int
	isLeaf     bool
	paramIndex map[int]int // temp ID -> parameter position

	// exp is the active explain journal (nil when recording is off); every
	// save/restore the function emits is journaled as the placement ground
	// truth, with the plan's eq-3.x provenance note where one was recorded.
	exp *explain.Journal

	// linkage, while set, flags emitted instructions as call-linkage
	// overhead for the tracer — except save/restore-classified accesses,
	// which stay in their own attribution bucket.
	linkage bool

	// liveAcross maps each call instruction to the registers holding values
	// that must survive it.
	liveAcross map[*ir.Instr]mach.RegSet
	// savesByBlock / restoresByBlock invert the shrink-wrap plan.
	savesByBlock    map[*ir.Block][]mach.Reg
	restoresByBlock map[*ir.Block][]mach.Reg
}

func newFngen(pp *core.ProgramPlan, fp *core.FuncPlan) *fngen {
	return &fngen{
		pp:  pp,
		fp:  fp,
		f:   fp.F,
		cfg: pp.Mode.Config,
		exp: explain.Current(),

		blockStart:      map[*ir.Block]int{},
		arrOffset:       map[*ir.LocalArray]int{},
		tempHome:        map[int]int{},
		saveSlot:        map[mach.Reg]int{},
		callSlot:        map[mach.Reg]int{},
		paramIndex:      map[int]int{},
		liveAcross:      map[*ir.Instr]mach.RegSet{},
		savesByBlock:    map[*ir.Block][]mach.Reg{},
		restoresByBlock: map[*ir.Block][]mach.Reg{},
	}
}

func (g *fngen) emit(in mcode.Instr) {
	if g.linkage && in.Class != mcode.ClassSaveRestore {
		in.Linkage = true
	}
	g.code = append(g.code, in)
}

func (g *fngen) emitBranch(op mcode.OpCode, rs mach.Reg, blk *ir.Block) {
	g.fixes = append(g.fixes, fixup{at: len(g.code), blk: blk})
	g.emit(mcode.Instr{Op: op, Rs: rs})
}

func (g *fngen) loc(t *ir.Temp) regalloc.Loc { return g.fp.Alloc.Locs[t.ID] }

func (g *fngen) homeClass(t *ir.Temp) mcode.MemClass {
	if t.IsVar {
		return mcode.ClassScalar
	}
	return mcode.ClassSpill
}

func (g *fngen) run() error {
	g.layout()
	g.prologue()
	for bi, b := range g.f.Blocks {
		g.blockStart[b] = len(g.code)
		if b == g.f.Entry() {
			// Entry-block saves and parameter moves were emitted by the
			// prologue, which is part of this block's code span.
			g.blockStart[b] = 0
		}
		for _, r := range g.savesByBlock[b] {
			if b != g.f.Entry() {
				g.emitSave(b, r)
			}
		}
		var next *ir.Block
		if bi+1 < len(g.f.Blocks) {
			next = g.f.Blocks[bi+1]
		}
		for ii, in := range b.Instrs {
			isTerm := ii == len(b.Instrs)-1
			if err := g.instr(b, in, isTerm, next); err != nil {
				return err
			}
		}
	}
	return nil
}

// layout assigns the frame: [outgoing args][local arrays][memory temps]
// [register save slots]. Incoming argument i of this function lives at
// frameSize + i (the caller's outgoing area).
func (g *fngen) layout() {
	for i, p := range g.f.Params {
		g.paramIndex[p.ID] = i
	}
	g.isLeaf = g.f.IsLeaf()

	// Outgoing argument area.
	for _, cs := range g.f.CallSites() {
		for _, al := range g.pp.Oracle.ArgLocs(cs.Instr) {
			if !al.InReg && al.Slot+1 > g.outArgs {
				g.outArgs = al.Slot + 1
			}
		}
	}
	off := g.outArgs
	for _, arr := range g.f.LocalArrays {
		g.arrOffset[arr] = off
		off += arr.Size
	}
	// Memory temps (stack-passed parameters use their incoming slots, fixed
	// up after the frame size is known).
	var stackParams []int
	for _, t := range g.f.Temps() {
		l := g.loc(t)
		if l.Kind != regalloc.LocMem {
			continue
		}
		if pi, isParam := g.paramIndex[t.ID]; isParam && g.incomingIsStack(pi) {
			stackParams = append(stackParams, t.ID)
			continue
		}
		g.tempHome[t.ID] = off
		off++
	}
	// Save slots: one pool for the shrink-wrap plan's preserved values,
	// a disjoint pool for transient around-call saves.
	planRegs := g.fp.Plan.Regs()
	var needCallSlot mach.RegSet
	for _, rng := range g.fp.Alloc.Ranges {
		l := g.fp.Alloc.Locs[rng.Temp.ID]
		if l.Kind != regalloc.LocReg {
			continue
		}
		for _, cs := range rng.Calls {
			g.liveAcross[cs.Instr] = g.liveAcross[cs.Instr].Add(l.Reg)
			if g.pp.Oracle.Clobbered(cs.Instr).Has(l.Reg) {
				needCallSlot = needCallSlot.Add(l.Reg)
			}
		}
	}
	planRegs.ForEach(func(r mach.Reg) {
		g.saveSlot[r] = off
		off++
	})
	needCallSlot.ForEach(func(r mach.Reg) {
		g.callSlot[r] = off
		off++
	})
	if !g.isLeaf {
		g.raSlot = off
		off++
	}
	g.frameSize = off
	for _, id := range stackParams {
		g.tempHome[id] = g.frameSize + g.paramIndex[id]
	}
	// Invert the save plan for per-block emission, deterministic order.
	for r, blks := range g.fp.Plan.SaveAt {
		for _, b := range blks {
			g.savesByBlock[b] = append(g.savesByBlock[b], r)
		}
	}
	for r, blks := range g.fp.Plan.RestoreAt {
		for _, b := range blks {
			g.restoresByBlock[b] = append(g.restoresByBlock[b], r)
		}
	}
	for _, m := range []map[*ir.Block][]mach.Reg{g.savesByBlock, g.restoresByBlock} {
		for _, regs := range m {
			sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
		}
	}
}

// incomingIsStack reports whether parameter i of this function arrives on
// the stack under the convention this function was compiled with.
func (g *fngen) incomingIsStack(i int) bool {
	if g.pp.Mode.IPRA && !g.fp.Open {
		// Closed procedure: the published location is wherever the param
		// temp settled; memory temps are stack-passed.
		return true
	}
	return i >= len(g.cfg.Params)
}

func (g *fngen) emitSave(b *ir.Block, r mach.Reg) {
	g.emit(mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: r, Imm: int64(g.saveSlot[r]), Class: mcode.ClassSaveRestore})
	if g.exp != nil {
		why := g.fp.Plan.SaveWhy(r, b)
		g.exp.Record(g.f.Name, explain.Decision{
			Kind: explain.KindSave, Reg: r.String(), Block: b.Name,
			Cause: planCause(why), Freq: b.Freq(), Detail: why,
		})
	}
}

func (g *fngen) emitRestore(b *ir.Block, r mach.Reg) {
	g.emit(mcode.Instr{Op: mcode.LW, Rd: r, Rs: mach.SP, Imm: int64(g.saveSlot[r]), Class: mcode.ClassSaveRestore})
	if g.exp != nil {
		why := g.fp.Plan.RestoreWhy(r, b)
		g.exp.Record(g.f.Name, explain.Decision{
			Kind: explain.KindRestore, Reg: r.String(), Block: b.Name,
			Cause: planCause(why), Freq: b.Freq(), Detail: why,
		})
	}
}

// planCause maps a plan site's provenance note to the cause enum: the eq-3.x
// notes come from ShrinkWrap, the convention note from EntryExitPlan, and an
// empty note from a plan built while no journal was active (a cached
// incremental plan).
func planCause(why string) string {
	switch {
	case why == "":
		return "plan"
	case strings.HasPrefix(why, "eq "):
		return "shrink-wrap"
	default:
		return "entry-exit"
	}
}

func (g *fngen) prologue() {
	g.linkage = true
	defer func() { g.linkage = false }()
	if g.frameSize > 0 {
		g.emit(mcode.Instr{Op: mcode.ADD, Rd: mach.SP, Rs: mach.SP, HasImm: true, Imm: int64(-g.frameSize)})
	}
	if !g.isLeaf {
		g.emit(mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: mach.RA, Imm: int64(g.raSlot), Class: mcode.ClassSaveRestore})
		if g.exp != nil {
			g.exp.Record(g.f.Name, explain.Decision{
				Kind: explain.KindSave, Reg: mach.RA.String(), Block: g.f.Entry().Name,
				Cause: "ra", Freq: g.f.Entry().Freq(),
				Detail: "non-leaf: return address preserved across calls",
			})
		}
	}
	for _, r := range g.savesByBlock[g.f.Entry()] {
		g.emitSave(g.f.Entry(), r)
	}
	g.paramMoves()
}

// paramMoves places incoming parameters into their allocated homes.
func (g *fngen) paramMoves() {
	ipraClosed := g.pp.Mode.IPRA && !g.fp.Open
	var moves []move
	for i, p := range g.f.Params {
		l := g.loc(p)
		if l.Kind == regalloc.LocNone {
			continue // parameter never referenced
		}
		if !g.fp.Alloc.Ranges[p.ID].EntryLive {
			// Redefined on every path before any use: the incoming value is
			// never needed, and the register's activity range (hence any
			// shrink-wrapped save) starts at the redefinition — delivering
			// into it here would clobber the caller's value ahead of the save.
			continue
		}
		if ipraClosed {
			// The argument was delivered directly to the allocated home.
			continue
		}
		if i < len(g.cfg.Params) {
			src := g.cfg.Params[i]
			if l.Kind == regalloc.LocReg {
				if l.Reg != src {
					moves = append(moves, move{dstReg: l.Reg, srcKind: srcReg, srcReg: src})
				}
			} else {
				// Store the register argument into the memory home first,
				// before any register-to-register shuffling clobbers it.
				g.emit(mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: src, Imm: int64(g.tempHome[p.ID]), Class: mcode.ClassScalar})
			}
		} else if l.Kind == regalloc.LocReg {
			// Stack argument promoted to a register: load it after the
			// register moves (its target cannot be a source, sources are
			// only parameter registers).
			defer func(reg mach.Reg, slot int) {
				g.emit(mcode.Instr{Op: mcode.LW, Rd: reg, Rs: mach.SP, Imm: int64(slot), Class: mcode.ClassScalar})
			}(l.Reg, g.frameSize+i)
		}
		// Stack argument in memory: its home is its incoming slot; nothing
		// to do.
	}
	g.parallelMoves(moves)
}

type srcKind int

const (
	srcReg srcKind = iota
	srcConst
	srcMem
)

type move struct {
	dstReg   mach.Reg
	srcKind  srcKind
	srcReg   mach.Reg
	srcConst int64
	srcOff   int
	srcClass mcode.MemClass
}

// parallelMoves emits a set of register moves that must appear to happen
// simultaneously. Register-to-register transfers run first (breaking cycles
// through $at); constant and memory sources fill in afterwards, since they
// read no target registers.
func (g *fngen) parallelMoves(moves []move) {
	var regMoves []move
	var rest []move
	for _, m := range moves {
		if m.srcKind == srcReg {
			if m.srcReg != m.dstReg {
				regMoves = append(regMoves, m)
			}
		} else {
			rest = append(rest, m)
		}
	}
	for len(regMoves) > 0 {
		emitted := false
		for i, m := range regMoves {
			blocked := false
			for j, o := range regMoves {
				if i != j && o.srcReg == m.dstReg {
					blocked = true
					break
				}
			}
			if !blocked {
				g.emit(mcode.Instr{Op: mcode.MOVE, Rd: m.dstReg, Rs: m.srcReg})
				regMoves = append(regMoves[:i], regMoves[i+1:]...)
				emitted = true
				break
			}
		}
		if emitted {
			continue
		}
		// Cycle: rotate through the assembler temporary.
		m := regMoves[0]
		g.emit(mcode.Instr{Op: mcode.MOVE, Rd: mach.AT, Rs: m.srcReg})
		for i := range regMoves {
			if regMoves[i].srcReg == m.srcReg {
				regMoves[i].srcReg = mach.AT
			}
		}
	}
	for _, m := range rest {
		switch m.srcKind {
		case srcConst:
			g.emit(mcode.Instr{Op: mcode.LI, Rd: m.dstReg, Imm: m.srcConst})
		case srcMem:
			g.emit(mcode.Instr{Op: mcode.LW, Rd: m.dstReg, Rs: mach.SP, Imm: int64(m.srcOff), Class: m.srcClass})
		}
	}
}

// readOp brings an operand's value into a register, using scratch when the
// value is not already register-resident.
func (g *fngen) readOp(o ir.Operand, scratch mach.Reg) mach.Reg {
	if o.IsConst() {
		g.emit(mcode.Instr{Op: mcode.LI, Rd: scratch, Imm: o.Const})
		return scratch
	}
	l := g.loc(o.Temp)
	if l.Kind == regalloc.LocReg {
		return l.Reg
	}
	g.emit(mcode.Instr{Op: mcode.LW, Rd: scratch, Rs: mach.SP, Imm: int64(g.tempHome[o.Temp.ID]), Class: g.homeClass(o.Temp)})
	return scratch
}

// dstReg returns the register to compute a result into, plus a commit step
// that stores it home if the temp lives in memory.
func (g *fngen) dstReg(t *ir.Temp, scratch mach.Reg) (mach.Reg, func()) {
	l := g.loc(t)
	if l.Kind == regalloc.LocReg {
		return l.Reg, func() {}
	}
	return scratch, func() {
		g.emit(mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: scratch, Imm: int64(g.tempHome[t.ID]), Class: g.homeClass(t)})
	}
}

// fitsImm reports whether v can be used as an ALU immediate (16-bit signed,
// as on the R2000).
func fitsImm(v int64) bool { return v >= -32768 && v <= 32767 }

var aluOp = map[ir.Op]mcode.OpCode{
	ir.OpAdd: mcode.ADD, ir.OpSub: mcode.SUB, ir.OpMul: mcode.MUL,
	ir.OpDiv: mcode.DIV, ir.OpRem: mcode.REM,
	ir.OpCmpEq: mcode.SEQ, ir.OpCmpNe: mcode.SNE,
	ir.OpCmpLt: mcode.SLT, ir.OpCmpLe: mcode.SLE,
}

func (g *fngen) instr(b *ir.Block, in *ir.Instr, isTerm bool, next *ir.Block) error {
	switch in.Op {
	case ir.OpConst:
		rd, commit := g.dstReg(in.Dst, mach.K0)
		g.emit(mcode.Instr{Op: mcode.LI, Rd: rd, Imm: in.Imm})
		commit()
	case ir.OpCopy:
		rd, commit := g.dstReg(in.Dst, mach.K0)
		rs := g.readOp(in.A, rd)
		if rs != rd {
			g.emit(mcode.Instr{Op: mcode.MOVE, Rd: rd, Rs: rs})
		}
		commit()
	case ir.OpNeg:
		rd, commit := g.dstReg(in.Dst, mach.K0)
		rs := g.readOp(in.A, mach.K0)
		g.emit(mcode.Instr{Op: mcode.SUB, Rd: rd, Rs: mach.Zero, Rt: rs})
		commit()
	case ir.OpNot:
		rd, commit := g.dstReg(in.Dst, mach.K0)
		rs := g.readOp(in.A, mach.K0)
		g.emit(mcode.Instr{Op: mcode.SEQ, Rd: rd, Rs: rs, HasImm: true, Imm: 0})
		commit()
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpRem,
		ir.OpCmpEq, ir.OpCmpNe, ir.OpCmpLt, ir.OpCmpLe, ir.OpCmpGt, ir.OpCmpGe:
		g.binary(in)
	case ir.OpLoadG:
		rd, commit := g.dstReg(in.Dst, mach.K0)
		g.emit(mcode.Instr{Op: mcode.LW, Rd: rd, Rs: mach.Zero, Imm: int64(in.Global.Addr), Class: mcode.ClassScalar})
		commit()
	case ir.OpStoreG:
		rs := g.readOp(in.A, mach.K0)
		g.emit(mcode.Instr{Op: mcode.SW, Rs: mach.Zero, Rt: rs, Imm: int64(in.Global.Addr), Class: mcode.ClassScalar})
	case ir.OpLoadIdx:
		g.loadIdx(in)
	case ir.OpStoreIdx:
		g.storeIdx(in)
	case ir.OpFuncAddr:
		rd, commit := g.dstReg(in.Dst, mach.K0)
		g.emit(mcode.Instr{Op: mcode.LI, Rd: rd, Imm: g.pp.Module.FuncIndex(in.Callee)})
		commit()
	case ir.OpCall, ir.OpCallInd:
		g.call(b, in)
	case ir.OpPrint:
		rs := g.readOp(in.A, mach.K0)
		g.emit(mcode.Instr{Op: mcode.PRINT, Rs: rs})
	case ir.OpJmp:
		g.emitBlockRestores(b, 0)
		if in.Target != next {
			g.emitBranch(mcode.J, 0, in.Target)
		}
	case ir.OpBr:
		cond := g.readOp(in.A, mach.K0)
		cond = g.emitBlockRestores(b, cond)
		switch {
		case in.Else == next:
			g.emitBranch(mcode.BNEZ, cond, in.Target)
		case in.Target == next:
			g.emitBranch(mcode.BEQZ, cond, in.Else)
		default:
			g.emitBranch(mcode.BNEZ, cond, in.Target)
			g.emitBranch(mcode.J, 0, in.Else)
		}
	case ir.OpRet:
		g.linkage = true
		if g.f.Returns {
			rs := g.readOp(in.A, mach.K0)
			g.emit(mcode.Instr{Op: mcode.MOVE, Rd: mach.V0, Rs: rs})
		}
		g.emitBlockRestores(b, 0)
		if !g.isLeaf {
			g.emit(mcode.Instr{Op: mcode.LW, Rd: mach.RA, Rs: mach.SP, Imm: int64(g.raSlot), Class: mcode.ClassSaveRestore})
			if g.exp != nil {
				g.exp.Record(g.f.Name, explain.Decision{
					Kind: explain.KindRestore, Reg: mach.RA.String(), Block: b.Name,
					Cause: "ra", Freq: b.Freq(),
					Detail: "non-leaf: return address reloaded before return",
				})
			}
		}
		if g.frameSize > 0 {
			g.emit(mcode.Instr{Op: mcode.ADD, Rd: mach.SP, Rs: mach.SP, HasImm: true, Imm: int64(g.frameSize)})
		}
		g.emit(mcode.Instr{Op: mcode.JR, Rs: mach.RA})
		g.linkage = false
	default:
		return fmt.Errorf("unhandled IR op %s", in.Op)
	}
	_ = isTerm
	return nil
}

// emitBlockRestores emits this block's shrink-wrap restores before its
// terminator. If the branch condition lives in a register being restored,
// it is first copied to $at; the (possibly relocated) condition register is
// returned.
func (g *fngen) emitBlockRestores(b *ir.Block, cond mach.Reg) mach.Reg {
	regs := g.restoresByBlock[b]
	if len(regs) == 0 {
		return cond
	}
	for _, r := range regs {
		if r == cond {
			g.emit(mcode.Instr{Op: mcode.MOVE, Rd: mach.AT, Rs: cond})
			cond = mach.AT
			break
		}
	}
	for _, r := range regs {
		g.emitRestore(b, r)
	}
	return cond
}

func (g *fngen) binary(in *ir.Instr) {
	op := in.Op
	a, bb := in.A, in.B
	// Gt/Ge become Lt/Le with swapped operands.
	if op == ir.OpCmpGt {
		op, a, bb = ir.OpCmpLt, bb, a
	} else if op == ir.OpCmpGe {
		op, a, bb = ir.OpCmpLe, bb, a
	}
	rd, commit := g.dstReg(in.Dst, mach.K0)
	ra := g.readOp(a, mach.K0)
	// Immediate form when the right operand is a small constant (division
	// keeps the register form so the zero-divisor trap logic is uniform).
	if bb.IsConst() && fitsImm(bb.Const) && op != ir.OpDiv && op != ir.OpRem {
		g.emit(mcode.Instr{Op: aluOp[op], Rd: rd, Rs: ra, HasImm: true, Imm: bb.Const})
		commit()
		return
	}
	rb := g.readOp(bb, mach.K1)
	g.emit(mcode.Instr{Op: aluOp[op], Rd: rd, Rs: ra, Rt: rb})
	commit()
}

// arrClass classifies an element access: aggregate for real arrays, scalar
// traffic for the one-word home slots of split live ranges.
func arrClass(arr ir.ArrayRef) mcode.MemClass {
	if arr.Local != nil && arr.Local.IsSpill {
		if arr.Local.SpillVar {
			return mcode.ClassScalar
		}
		return mcode.ClassSpill
	}
	return mcode.ClassAggregate
}

func (g *fngen) loadIdx(in *ir.Instr) {
	rd, commit := g.dstReg(in.Dst, mach.K0)
	class := arrClass(in.Arr)
	g.emitArrayAccess(in.Arr, in.A, func(base mach.Reg, off int64) {
		g.emit(mcode.Instr{Op: mcode.LW, Rd: rd, Rs: base, Imm: off, Class: class})
	})
	commit()
}

func (g *fngen) storeIdx(in *ir.Instr) {
	class := arrClass(in.Arr)
	g.emitArrayAccess(in.Arr, in.A, func(base mach.Reg, off int64) {
		// The address register is base (possibly $k1); the value may use
		// $k0 freely — the index value is consumed.
		rv := g.readOp(in.B, mach.K0)
		g.emit(mcode.Instr{Op: mcode.SW, Rs: base, Rt: rv, Imm: off, Class: class})
	})
}

// emitArrayAccess computes the base register and constant offset for an
// element access and invokes gen to emit the memory operation.
func (g *fngen) emitArrayAccess(arr ir.ArrayRef, idx ir.Operand, gen func(base mach.Reg, off int64)) {
	if arr.Global != nil {
		base := int64(arr.Global.Addr)
		if idx.IsConst() {
			gen(mach.Zero, base+idx.Const)
			return
		}
		ri := g.readOp(idx, mach.K1)
		gen(ri, base)
		return
	}
	off := int64(g.arrOffset[arr.Local])
	if idx.IsConst() {
		gen(mach.SP, off+idx.Const)
		return
	}
	ri := g.readOp(idx, mach.K1)
	g.emit(mcode.Instr{Op: mcode.ADD, Rd: mach.K1, Rs: mach.SP, Rt: ri})
	gen(mach.K1, off)
}

// call emits a complete call sequence:
//  1. save caller-side registers holding values live across the call that
//     the callee may destroy,
//  2. marshal outgoing arguments (stack stores, then a parallel register
//     shuffle, then constant/memory fills),
//  3. transfer control,
//  4. restore the saved registers,
//  5. collect the result.
func (g *fngen) call(b *ir.Block, in *ir.Instr) {
	g.linkage = true
	defer func() { g.linkage = false }()
	callee := "(indirect)"
	if in.Op == ir.OpCall {
		callee = in.Callee.Name
	}
	clob := g.pp.Oracle.Clobbered(in)
	toSave := g.liveAcross[in] & clob
	var saved []mach.Reg
	toSave.ForEach(func(r mach.Reg) {
		g.emit(mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: r, Imm: int64(g.callSlot[r]), Class: mcode.ClassSaveRestore})
		saved = append(saved, r)
		if g.exp != nil {
			g.exp.Record(g.f.Name, explain.Decision{
				Kind: explain.KindSave, Reg: r.String(), Callee: callee, Block: b.Name,
				Cause: "around-call", Freq: b.Freq(),
				Detail: fmt.Sprintf("live across the call and %s clobbers it (summary %s)", callee, clob),
			})
		}
	})

	// Indirect target value is fetched into $k1 before argument marshalling
	// can overwrite its register.
	if in.Op == ir.OpCallInd {
		rs := g.readOp(in.A, mach.K1)
		if rs != mach.K1 {
			g.emit(mcode.Instr{Op: mcode.MOVE, Rd: mach.K1, Rs: rs})
		}
	}

	locs := g.pp.Oracle.ArgLocs(in)
	var moves []move
	for i, a := range in.Args {
		al := locs[i]
		if !al.InReg {
			// Stack argument: store now, while all source registers are
			// still intact.
			rv := g.readOp(a, mach.K0)
			g.emit(mcode.Instr{Op: mcode.SW, Rs: mach.SP, Rt: rv, Imm: int64(al.Slot), Class: mcode.ClassScalar})
			continue
		}
		m := move{dstReg: al.Reg}
		switch {
		case a.IsConst():
			m.srcKind = srcConst
			m.srcConst = a.Const
		default:
			l := g.loc(a.Temp)
			if l.Kind == regalloc.LocReg {
				m.srcKind = srcReg
				m.srcReg = l.Reg
			} else {
				m.srcKind = srcMem
				m.srcOff = g.tempHome[a.Temp.ID]
				m.srcClass = g.homeClass(a.Temp)
			}
		}
		moves = append(moves, m)
	}
	g.parallelMoves(moves)

	if in.Op == ir.OpCall {
		// The function index is stashed in Imm for the link step.
		g.emit(mcode.Instr{Op: mcode.JAL, Imm: g.pp.Module.FuncIndex(in.Callee)})
	} else {
		g.emit(mcode.Instr{Op: mcode.JALR, Rs: mach.K1})
	}

	for _, r := range saved {
		g.emit(mcode.Instr{Op: mcode.LW, Rd: r, Rs: mach.SP, Imm: int64(g.callSlot[r]), Class: mcode.ClassSaveRestore})
		if g.exp != nil {
			g.exp.Record(g.f.Name, explain.Decision{
				Kind: explain.KindRestore, Reg: r.String(), Callee: callee, Block: b.Name,
				Cause: "around-call", Freq: b.Freq(),
				Detail: "reload after the call that clobbered it",
			})
		}
	}
	if in.Dst != nil {
		rd, commit := g.dstReg(in.Dst, mach.K0)
		g.emit(mcode.Instr{Op: mcode.MOVE, Rd: rd, Rs: mach.V0})
		commit()
	}
}
