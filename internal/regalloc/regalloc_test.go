package regalloc

import (
	"testing"

	"chow88/internal/ir"
	"chow88/internal/lower"
	"chow88/internal/mach"
	"chow88/internal/parser"
	"chow88/internal/sema"
)

func funcFor(t *testing.T, src, name string) *ir.Func {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sema.Check(tree)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	mod, err := lower.Build(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	// The optimizer is deliberately not run: these tests inspect the
	// locations of named source variables, which copy propagation would
	// otherwise fold away.
	return mod.Lookup(name)
}

func tempByPrefix(f *ir.Func, prefix string) *ir.Temp {
	for _, t := range f.Temps() {
		if t.IsVar && len(t.Name) >= len(prefix) && t.Name[:len(prefix)] == prefix {
			return t
		}
	}
	return nil
}

func TestInterferingRangesGetDistinctRegisters(t *testing.T) {
	f := funcFor(t, `
func f(a int, b int) int {
    var x int;
    var y int;
    x = a + b;
    y = a - b;
    print(x);
    print(y);
    return x * y;
}
func main() { print(f(3, 4)); }`, "f")
	res := Allocate(f, Options{Config: mach.Default(), Mode: Intra})
	x := tempByPrefix(f, "x.")
	y := tempByPrefix(f, "y.")
	lx, ly := res.LocOf(x), res.LocOf(y)
	if lx.Kind != LocReg || ly.Kind != LocReg {
		t.Fatalf("x=%v y=%v; both should be in registers", lx, ly)
	}
	if lx.Reg == ly.Reg {
		t.Errorf("x and y interfere but share %s", lx.Reg)
	}
}

func TestCallFreeRangePrefersCallerSaved(t *testing.T) {
	f := funcFor(t, `
func f(a int) int {
    var x int;
    x = a * 2;
    print(x);
    return x + 1;
}
func main() { print(f(5)); }`, "f")
	cfg := mach.Default()
	res := Allocate(f, Options{Config: cfg, Mode: Intra,
		ParamIn: DefaultArgLocs(cfg, 1)})
	x := tempByPrefix(f, "x.")
	l := res.LocOf(x)
	if l.Kind != LocReg {
		t.Fatalf("x spilled: %v", l)
	}
	if cfg.IsCalleeSaved(l.Reg) {
		t.Errorf("call-free x took callee-saved %s (pointless save/restore)", l.Reg)
	}
}

func TestSpanningRangePrefersCalleeSavedIntra(t *testing.T) {
	// x is live across two calls: one entry/exit save beats two around-call
	// pairs.
	f := funcFor(t, `
func g(v int) int { return v + 1; }
func f(a int) int {
    var x int;
    var p int;
    var q int;
    x = a * 3;
    p = g(a);
    q = g(p);
    return x + p + q;
}
func main() { print(f(5)); }`, "f")
	cfg := mach.Default()
	res := Allocate(f, Options{Config: cfg, Mode: Intra,
		ParamIn: DefaultArgLocs(cfg, 1)})
	x := tempByPrefix(f, "x.")
	l := res.LocOf(x)
	if l.Kind != LocReg {
		t.Fatalf("x spilled: %v", l)
	}
	if !cfg.IsCalleeSaved(l.Reg) {
		t.Errorf("x spans two calls; wanted callee-saved, got %s", l.Reg)
	}
}

// summaryOracle pretends every callee uses exactly the given set.
type summaryOracle struct {
	cfg  *mach.Config
	used mach.RegSet
}

func (o summaryOracle) Clobbered(*ir.Instr) mach.RegSet { return o.used }
func (o summaryOracle) ArgLocs(call *ir.Instr) []ArgLoc {
	return DefaultArgLocs(o.cfg, len(call.Args))
}

func TestInterModeUsesCalleeUnusedRegisters(t *testing.T) {
	// Under inter-procedural allocation with a callee that only uses $v1,
	// values live across the call can sit in any other caller-saved
	// register for free — no callee-saved register needed at all.
	f := funcFor(t, `
func g(v int) int { return v + 1; }
func f(a int) int {
    var x int;
    var p int;
    x = a * 3;
    p = g(a);
    return x + p;
}
func main() { print(f(5)); }`, "f")
	cfg := mach.Default()
	res := Allocate(f, Options{
		Config: cfg,
		Mode:   Inter,
		Oracle: summaryOracle{cfg: cfg, used: mach.SetOf(mach.V1)},
	})
	x := tempByPrefix(f, "x.")
	l := res.LocOf(x)
	if l.Kind != LocReg {
		t.Fatalf("x spilled: %v", l)
	}
	if l.Reg == mach.V1 {
		t.Errorf("x landed in the one register the callee destroys")
	}
	if cfg.IsCalleeSaved(l.Reg) {
		t.Errorf("x took callee-saved %s though cheap caller-saved registers were free", l.Reg)
	}
}

func TestInterModeAvoidsClobberedRegisters(t *testing.T) {
	// When the callee tree uses every caller-saved register, a value live
	// across the call must take a callee-saved one.
	f := funcFor(t, `
func g(v int) int { return v + 1; }
func f(a int) int {
    var x int;
    var p int;
    x = a * 3;
    p = g(a);
    return x + p;
}
func main() { print(f(5)); }`, "f")
	cfg := mach.Default()
	clob := cfg.CallerSaved.Union(cfg.ParamSet())
	res := Allocate(f, Options{
		Config: cfg,
		Mode:   Inter,
		Oracle: summaryOracle{cfg: cfg, used: clob},
	})
	x := tempByPrefix(f, "x.")
	l := res.LocOf(x)
	if l.Kind != LocReg {
		t.Fatalf("x spilled: %v", l)
	}
	if !cfg.IsCalleeSaved(l.Reg) {
		t.Errorf("x in %s would be destroyed by the call", l.Reg)
	}
}

func TestNoRegistersMeansMemory(t *testing.T) {
	f := funcFor(t, `
func f(a int) int { return a + 1; }
func main() { print(f(5)); }`, "f")
	empty := &mach.Config{Name: "none", Params: []mach.Reg{mach.A0}}
	res := Allocate(f, Options{Config: empty, Mode: Intra})
	for _, tmp := range f.Temps() {
		if res.LocOf(tmp).Kind == LocReg {
			t.Errorf("temp %s got a register from an empty config", tmp)
		}
	}
	if res.Spilled == 0 {
		t.Errorf("everything should have spilled")
	}
}

func TestParamPreference(t *testing.T) {
	// A parameter that only feeds a quick use should stay in its arrival
	// register rather than be moved elsewhere.
	f := funcFor(t, `
func f(a int, b int) int { return a + b; }
func main() { print(f(1, 2)); }`, "f")
	cfg := mach.Default()
	res := Allocate(f, Options{Config: cfg, Mode: Intra,
		ParamIn: DefaultArgLocs(cfg, 2)})
	if got := res.LocOf(f.Params[0]); got.Kind != LocReg || got.Reg != mach.A0 {
		t.Errorf("param 0 at %v, want $a0", got)
	}
	if got := res.LocOf(f.Params[1]); got.Kind != LocReg || got.Reg != mach.A1 {
		t.Errorf("param 1 at %v, want $a1", got)
	}
}

func TestOutgoingArgPreference(t *testing.T) {
	// The value passed as the first argument should be computed straight
	// into $a0 when nothing else constrains it.
	f := funcFor(t, `
func g(v int) int { return v; }
func f(a int) int {
    var x int;
    x = a * 2;
    return g(x);
}
func main() { print(f(5)); }`, "f")
	cfg := mach.Default()
	res := Allocate(f, Options{Config: cfg, Mode: Intra,
		ParamIn: DefaultArgLocs(cfg, 1)})
	x := tempByPrefix(f, "x.")
	if got := res.LocOf(x); got.Kind != LocReg || got.Reg != mach.A0 {
		t.Errorf("outgoing arg at %v, want $a0", got)
	}
}

func TestDefaultArgLocs(t *testing.T) {
	cfg := mach.Default()
	locs := DefaultArgLocs(cfg, 6)
	for i := 0; i < 4; i++ {
		if !locs[i].InReg || locs[i].Reg != cfg.Params[i] {
			t.Errorf("arg %d: %+v", i, locs[i])
		}
	}
	for i := 4; i < 6; i++ {
		if locs[i].InReg || locs[i].Slot != i {
			t.Errorf("arg %d: %+v", i, locs[i])
		}
	}
}

func TestUnusedTempGetsNoLocation(t *testing.T) {
	f := funcFor(t, `
func f(unused int) int { return 7; }
func main() { print(f(1)); }`, "f")
	res := Allocate(f, Options{Config: mach.Default(), Mode: Intra})
	if got := res.LocOf(f.Params[0]); got.Kind != LocNone {
		t.Errorf("unused param located at %v", got)
	}
}

func TestMustSaveWaivesCharge(t *testing.T) {
	// With MustSave covering $s0, a low-weight spanning range should happily
	// take it (no marginal entry/exit cost) even though every caller-saved
	// register is clobbered by the callee.
	f := funcFor(t, `
func g(v int) int { return v + 1; }
func f(a int) int {
    var x int;
    var p int;
    x = a * 3;
    p = g(a);
    return x + p;
}
func main() { print(f(5)); }`, "f")
	cfg := mach.Default()
	clob := cfg.CallerSaved.Union(cfg.ParamSet())
	res := Allocate(f, Options{
		Config:   cfg,
		Mode:     Intra,
		Oracle:   summaryOracle{cfg: cfg, used: clob},
		MustSave: mach.SetOf(mach.S0),
		ParamIn:  DefaultArgLocs(cfg, 1),
	})
	x := tempByPrefix(f, "x.")
	l := res.LocOf(x)
	if l.Kind != LocReg || l.Reg != mach.S0 {
		t.Errorf("x at %v, want the pre-paid $s0", l)
	}
}
