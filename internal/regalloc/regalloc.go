// Package regalloc implements priority-based graph coloring register
// allocation (Chow–Hennessy) with the paper's extension for inter-procedural
// allocation: in inter-procedural mode priorities are computed per
// (live-range, register) pair, so that registers known to be unused by the
// callees of spanned calls carry values across those calls for free.
//
// The allocator itself is policy-free about call boundaries: an Oracle
// supplies, per call site, the set of registers the call may destroy and the
// locations where outgoing arguments must be placed. The intra-procedural
// oracle assumes the default linkage; the inter-procedural driver
// (internal/core) substitutes exact callee summaries.
package regalloc

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"chow88/internal/dataflow"
	"chow88/internal/explain"
	"chow88/internal/ir"
	"chow88/internal/liveness"
	"chow88/internal/mach"
	"chow88/internal/obs"
)

// Mode selects the register-usage convention the allocator assumes.
type Mode int

const (
	// Intra is ordinary per-procedure allocation: caller-saved registers
	// cost a save/restore pair around each spanned call; callee-saved
	// registers cost one save/restore pair at entry/exit.
	Intra Mode = iota
	// Inter makes every register operate in caller-saved mode (the paper's
	// convention for closed procedures processed in depth-first order).
	// Whether a used callee-saved register is then saved locally or
	// propagated to the ancestors is decided after allocation (§6).
	Inter
)

// ArgLoc says where an outgoing argument or incoming parameter lives at the
// call boundary.
type ArgLoc struct {
	InReg bool
	Reg   mach.Reg
	// Slot is the outgoing-argument stack slot index used when !InReg.
	Slot int
}

// Oracle supplies per-call-site linkage knowledge.
type Oracle interface {
	// Clobbered returns the set of allocatable registers whose contents the
	// call may destroy.
	Clobbered(call *ir.Instr) mach.RegSet
	// ArgLocs returns where each outgoing argument of the call must be
	// placed.
	ArgLocs(call *ir.Instr) []ArgLoc
}

// DefaultOracle implements the default linkage: every call clobbers all
// caller-saved registers (including idle parameter registers); the first
// len(Params) arguments travel in the parameter registers and the rest on
// the stack.
type DefaultOracle struct{ Config *mach.Config }

// Clobbered implements Oracle.
func (o DefaultOracle) Clobbered(*ir.Instr) mach.RegSet {
	return o.Config.CallerSaved.Union(o.Config.ParamSet())
}

// ArgLocs implements Oracle.
func (o DefaultOracle) ArgLocs(call *ir.Instr) []ArgLoc {
	return DefaultArgLocs(o.Config, len(call.Args))
}

// DefaultArgLocs returns the default convention's locations for n arguments.
func DefaultArgLocs(cfg *mach.Config, n int) []ArgLoc {
	out := make([]ArgLoc, n)
	for i := range out {
		if i < len(cfg.Params) {
			out[i] = ArgLoc{InReg: true, Reg: cfg.Params[i]}
		} else {
			out[i] = ArgLoc{Slot: i}
		}
	}
	return out
}

// Options configures one allocation run.
type Options struct {
	Config *mach.Config
	Mode   Mode
	Oracle Oracle
	// Prefer breaks priority ties toward registers already used in the
	// current call tree, minimizing the tree's register footprint (Fig. 1).
	Prefer mach.RegSet
	// MustSave holds callee-saved registers this procedure will save at
	// entry/exit regardless of its own usage (its closed children use them),
	// waiving their entry/exit charge: the parent may use them freely (§3).
	MustSave mach.RegSet
	// ParamIn gives incoming parameter locations under the default
	// convention; leave nil in Inter mode, where parameters may settle in
	// arbitrary registers.
	ParamIn []ArgLoc
}

// LocKind discriminates Loc.
type LocKind int

// Location kinds.
const (
	LocNone LocKind = iota // temp never occurs
	LocReg                 // lives in Reg
	LocMem                 // lives in a frame slot ("not allocated")
)

// Loc is the storage assigned to one temp.
type Loc struct {
	Kind LocKind
	Reg  mach.Reg
}

// Result is the allocation outcome for one function.
type Result struct {
	F    *ir.Func
	Locs []Loc // indexed by temp ID
	// UsedRegs is every register assigned to some temp.
	UsedRegs mach.RegSet
	// Live and Ranges expose the underlying analyses for later phases.
	Live   *liveness.Result
	Ranges []*liveness.Range
	// Spilled counts ranges left in memory for lack of a profitable register.
	Spilled int
}

// LocOf returns the location of t.
func (r *Result) LocOf(t *ir.Temp) Loc { return r.Locs[t.ID] }

// Allocate runs priority-based coloring over f.
func Allocate(f *ir.Func, opts Options) *Result {
	if opts.Oracle == nil {
		opts.Oracle = DefaultOracle{Config: opts.Config}
	}
	dataflow.Loops(f)
	live := liveness.Analyze(f)
	ranges := liveness.Ranges(f, live)
	graph := liveness.BuildInterference(f, live)

	res := &Result{
		F:      f,
		Locs:   make([]Loc, f.NumTemps()),
		Live:   live,
		Ranges: ranges,
	}

	// Whether idle parameter registers are candidates is the Config's
	// choice: the full configuration includes $a0–$a3 in its caller-saved
	// set; the restricted Table 2 configurations exclude them.
	allocatable := opts.Config.Allocatable()
	if allocatable.Empty() {
		j := explain.Current()
		for _, r := range ranges {
			if r.Occurrences > 0 {
				res.Locs[r.Temp.ID] = Loc{Kind: LocMem}
				res.Spilled++
				if j != nil {
					j.Record(f.Name, explain.Decision{
						Kind: explain.KindSpill, Cause: "no-registers", Cost: r.Weight,
						Detail: fmt.Sprintf("%s: configuration has no allocatable registers", r.Temp),
					})
				}
			}
		}
		res.recordObs()
		return res
	}

	prefs := computePreferences(f, opts)

	// A parameter kept in memory costs one extra store to put it there (the
	// callee spills the incoming register, or the caller writes the stack
	// slot); credit register residency accordingly.
	for _, p := range f.Params {
		if r := ranges[p.ID]; r.Occurrences > 0 {
			r.Weight++
		}
	}

	// Candidate order: Chow's priority, savings normalized by range size.
	type cand struct {
		r    *liveness.Range
		prio float64
	}
	var cands []cand
	for _, r := range ranges {
		if r.Occurrences == 0 {
			continue
		}
		size := float64(len(r.Blocks))
		if size == 0 {
			size = 1
		}
		best := bestStaticNet(r, opts, allocatable)
		cands = append(cands, cand{r: r, prio: best / size})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].prio != cands[j].prio {
			return cands[i].prio > cands[j].prio
		}
		return cands[i].r.Temp.ID < cands[j].r.Temp.ID
	})

	for _, c := range cands {
		r := c.r
		id := r.Temp.ID
		forbidden := mach.RegSet(0)
		graph.Neighbors(id).ForEach(func(n int) {
			if res.Locs[n].Kind == LocReg {
				forbidden = forbidden.Add(res.Locs[n].Reg)
			}
		})
		bestReg, bestNet := mach.Reg(0), math.Inf(-1)
		found := false
		// In intra-procedural mode a range that spans calls prefers the
		// callee-saved class on cost ties (§2: one save/restore at
		// entry/exit beats one around every call, and it frees the
		// caller-saved registers for call-free ranges); a call-free range
		// prefers caller-saved (no save/restore at all). In
		// inter-procedural mode the summaries already price each register,
		// and ties go to caller-saved: touching a callee-saved register
		// widens its activity range and forces a save somewhere up the
		// graph (§6), which the per-range cost cannot see.
		var classPref mach.RegSet
		if opts.Mode == Intra && r.Spans() {
			classPref = opts.Config.CalleeSaved
		} else {
			classPref = opts.Config.CallerSaved
		}
		allocatable.ForEach(func(reg mach.Reg) {
			if forbidden.Has(reg) {
				return
			}
			net := r.Weight - regCost(r, reg, opts, res.UsedRegs)
			net += prefs.bonus(id, reg)
			if better(net, reg, bestNet, bestReg, found, res.UsedRegs, opts.Prefer, classPref) {
				bestReg, bestNet, found = reg, net, true
			}
		})
		// A strictly negative net means a stack home is cheaper than any
		// register. A zero net ties — take the register: the save/restore
		// charge is then already paid, so later ranges share the register
		// for free (the callee-saved entry/exit cost amortizes over all of
		// its users).
		if !found || bestNet < 0 {
			res.Locs[id] = Loc{Kind: LocMem}
			res.Spilled++
			if j := explain.Current(); j != nil {
				if !found {
					var holders []string
					graph.Neighbors(id).ForEach(func(n int) {
						if len(holders) < 3 && res.Locs[n].Kind == LocReg {
							holders = append(holders, fmt.Sprintf("%s in %s", ranges[n].Temp, res.Locs[n].Reg))
						}
					})
					j.Record(f.Name, explain.Decision{
						Kind: explain.KindSpill, Cause: "interference", Cost: r.Weight,
						Detail: fmt.Sprintf("%s: every allocatable register held by an interfering range (%s)",
							r.Temp, strings.Join(holders, ", ")),
					})
				} else {
					j.Record(f.Name, explain.Decision{
						Kind: explain.KindSpill, Cause: "cost", Reg: bestReg.String(), Cost: bestNet,
						Detail: fmt.Sprintf("%s: best candidate %s nets %.4g (savings %.4g - save/restore cost); stack home is cheaper",
							r.Temp, bestReg, bestNet, r.Weight),
					})
				}
			}
			continue
		}
		res.Locs[id] = Loc{Kind: LocReg, Reg: bestReg}
		res.UsedRegs = res.UsedRegs.Add(bestReg)
	}
	res.recordObs()
	return res
}

// recordObs publishes the allocation outcome to the active obs session.
func (r *Result) recordObs() {
	s := obs.Current()
	if s == nil {
		return
	}
	colored := int64(0)
	for _, l := range r.Locs {
		if l.Kind == LocReg {
			colored++
		}
	}
	s.Add(obs.CRangesColored, colored)
	s.Add(obs.CRangesSpilled, int64(r.Spilled))
}

// better decides whether (net, reg) beats the current best, breaking ties
// first toward the preferred register class, then toward registers already
// in use (function-local or the preferred call-tree set), then toward lower
// register numbers, for determinism and to minimize the call tree's
// register footprint.
func better(net float64, reg mach.Reg, bestNet float64, bestReg mach.Reg, found bool, used, prefer, classPref mach.RegSet) bool {
	if !found || net > bestNet {
		return true
	}
	if net < bestNet {
		return false
	}
	score := func(r mach.Reg) int {
		s := 0
		if classPref.Has(r) {
			s += 4
		}
		if used.Has(r) {
			s += 2
		}
		if prefer.Has(r) {
			s++
		}
		return s
	}
	sNew, sOld := score(reg), score(bestReg)
	if sNew != sOld {
		return sNew > sOld
	}
	return reg < bestReg
}

// regCost returns the frequency-weighted save/restore cost of keeping the
// range in reg.
func regCost(r *liveness.Range, reg mach.Reg, opts Options, usedSoFar mach.RegSet) float64 {
	cost := 0.0
	calleeSaved := opts.Config.IsCalleeSaved(reg)
	if opts.Mode == Intra && calleeSaved {
		// One save at entry plus one restore per exit, charged once per
		// register, unless the register must be saved anyway for the sake
		// of closed children.
		if !usedSoFar.Has(reg) && !opts.MustSave.Has(reg) {
			cost += 2
		}
		return cost
	}
	// Caller-saved behaviour (also every register under Inter mode): pay a
	// save and a restore around each spanned call that clobbers reg.
	for _, cs := range r.Calls {
		if opts.Oracle.Clobbered(cs.Instr).Has(reg) {
			cost += 2 * cs.Block.Freq()
		}
	}
	return cost
}

// bestStaticNet estimates the best achievable net benefit for ordering
// purposes (ignoring neighbors, assuming callee-saved charges apply).
func bestStaticNet(r *liveness.Range, opts Options, allocatable mach.RegSet) float64 {
	best := math.Inf(-1)
	allocatable.ForEach(func(reg mach.Reg) {
		net := r.Weight - regCost(r, reg, opts, 0)
		if net > best {
			best = net
		}
	})
	return best
}

// preferences maps temp IDs to per-register priority bonuses, derived from
// the parameter-passing optimization (§4): a temp that is an outgoing
// argument gains priority for the register the callee expects it in, and an
// incoming parameter gains priority for the register it arrives in, so the
// value can stay put from caller to callee.
type preferences struct {
	m map[int]map[mach.Reg]float64
}

func (p preferences) bonus(id int, reg mach.Reg) float64 {
	if b, ok := p.m[id]; ok {
		return b[reg]
	}
	return 0
}

func (p preferences) add(id int, reg mach.Reg, v float64) {
	b := p.m[id]
	if b == nil {
		b = map[mach.Reg]float64{}
		p.m[id] = b
	}
	b[reg] += v
}

func computePreferences(f *ir.Func, opts Options) preferences {
	p := preferences{m: map[int]map[mach.Reg]float64{}}
	// Incoming parameters prefer their arrival registers.
	for i, t := range f.Params {
		if opts.ParamIn != nil && i < len(opts.ParamIn) && opts.ParamIn[i].InReg {
			p.add(t.ID, opts.ParamIn[i].Reg, 1)
		}
	}
	// Outgoing arguments prefer the registers the callee expects.
	for _, cs := range f.CallSites() {
		locs := opts.Oracle.ArgLocs(cs.Instr)
		freq := cs.Block.Freq()
		for i, a := range cs.Instr.Args {
			if a.Temp == nil || i >= len(locs) || !locs[i].InReg {
				continue
			}
			p.add(a.Temp.ID, locs[i].Reg, freq)
		}
	}
	return p
}
