package regalloc

import (
	"fmt"
	"sort"

	"chow88/internal/ir"
	"chow88/internal/liveness"
)

// SplitSpilled implements the live-range splitting of Chow's priority-based
// coloring at basic-block granularity: a range that failed to obtain a
// register profitably is broken into block-local pieces connected through a
// home slot in the frame. Within each block that references the value, a
// fresh temp carries it (one load at block entry when the incoming value is
// needed, one store at block exit when a new value must flow out); the
// block-local pieces are short and call-free far more often than the
// original range, so a re-allocation round colors most of them.
//
// Splitting is capped at a few of the highest-weight spilled ranges: a
// split piece that itself fails to color in the re-allocation round costs
// extra glue traffic, so flooding a block with more pieces than the
// register file can hold is counterproductive.
//
// Returns the number of ranges split. The caller re-runs Allocate on the
// rewritten function.
func SplitSpilled(f *ir.Func, res *Result, allocatable int) int {
	split := 0
	// Identify candidates on the allocation that just ran: memory-resident
	// temps referenced in at least two blocks. Parameters are excluded —
	// their home is the incoming argument slot, which the calling
	// convention owns.
	params := map[int]bool{}
	for _, p := range f.Params {
		params[p.ID] = true
	}
	type cand struct {
		temp *ir.Temp
		rng  *liveness.Range
	}
	var cands []cand
	for _, rng := range res.Ranges {
		id := rng.Temp.ID
		if res.Locs[id].Kind != LocMem || params[id] || rng.Occurrences < 2 {
			continue
		}
		if refBlocks(f, rng.Temp) < 2 {
			continue
		}
		cands = append(cands, cand{temp: rng.Temp, rng: rng})
	}
	if len(cands) == 0 {
		return 0
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].rng.Weight != cands[j].rng.Weight {
			return cands[i].rng.Weight > cands[j].rng.Weight
		}
		return cands[i].temp.ID < cands[j].temp.ID
	})
	limit := allocatable - 3
	if limit < 1 {
		limit = 1
	}
	if len(cands) > limit {
		cands = cands[:limit]
	}

	live := res.Live
	for _, c := range cands {
		home := &ir.LocalArray{
			Name:     fmt.Sprintf("%s.home", c.temp.Name),
			Size:     1,
			IsSpill:  true,
			SpillVar: c.temp.IsVar,
		}
		f.LocalArrays = append(f.LocalArrays, home)
		ref := ir.ArrayRef{Local: home}

		for _, b := range f.Blocks {
			first, defs, uses := scanBlock(b, c.temp)
			if first == -1 {
				continue // not referenced here; the home carries the value
			}
			piece := f.NewTemp(fmt.Sprintf("%s@%s", c.temp.Name, b.Name), c.temp.IsVar)
			replaceInBlock(b, c.temp, piece)

			// Load the incoming value if the first access reads it.
			if uses && firstAccessReads(b, piece, first) {
				ld := &ir.Instr{Op: ir.OpLoadIdx, Dst: piece, Arr: ref, A: ir.ConstOp(0)}
				b.Instrs = append(b.Instrs[:first], append([]*ir.Instr{ld}, b.Instrs[first:]...)...)
			}
			// Store the outgoing value if the block redefines it and the
			// original range is live out.
			if defs && live.LiveOut[b].Get(c.temp.ID) {
				st := &ir.Instr{Op: ir.OpStoreIdx, Arr: ref, A: ir.ConstOp(0), B: ir.TempOp(piece)}
				n := len(b.Instrs)
				if t := b.Terminator(); t != nil {
					b.Instrs = append(b.Instrs[:n-1], st, b.Instrs[n-1])
				} else {
					b.Instrs = append(b.Instrs, st)
				}
			}
		}
		split++
	}
	return split
}

// refBlocks counts the blocks referencing t.
func refBlocks(f *ir.Func, t *ir.Temp) int {
	n := 0
	var buf []*ir.Temp
	for _, b := range f.Blocks {
		found := false
		for _, in := range b.Instrs {
			if in.Dst == t {
				found = true
				break
			}
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				if u == t {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			n++
		}
	}
	return n
}

// scanBlock finds the first instruction index referencing t and whether the
// block contains defs and uses of it.
func scanBlock(b *ir.Block, t *ir.Temp) (first int, defs, uses bool) {
	first = -1
	var buf []*ir.Temp
	for i, in := range b.Instrs {
		hit := false
		if in.Dst == t {
			defs = true
			hit = true
		}
		buf = in.Uses(buf[:0])
		for _, u := range buf {
			if u == t {
				uses = true
				hit = true
			}
		}
		if hit && first == -1 {
			first = i
		}
	}
	return first, defs, uses
}

// firstAccessReads reports whether the first reference to piece (at index
// first, post-replacement) reads it before writing it.
func firstAccessReads(b *ir.Block, piece *ir.Temp, first int) bool {
	in := b.Instrs[first]
	var buf []*ir.Temp
	buf = in.Uses(buf[:0])
	for _, u := range buf {
		if u == piece {
			return true
		}
	}
	return false
}

// replaceInBlock substitutes piece for t in every instruction of b.
func replaceInBlock(b *ir.Block, t, piece *ir.Temp) {
	repl := func(o *ir.Operand) {
		if o.Temp == t {
			o.Temp = piece
		}
	}
	for _, in := range b.Instrs {
		if in.Dst == t {
			in.Dst = piece
		}
		repl(&in.A)
		repl(&in.B)
		for i := range in.Args {
			repl(&in.Args[i])
		}
	}
}
