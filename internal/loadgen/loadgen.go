// Package loadgen drives a chowd daemon with a mixed workload — healthy
// compile/run/incremental clients whose answers are checked against the
// reference interpreter, plus deliberately abusive traffic (slowloris
// connections that drip bytes, oversized request bodies) — and summarizes
// throughput, latency percentiles and failure counts. It is both the
// cmd/chowload CLI's engine and the saturation benchmark's harness, and
// the e2e gate's tool for proving abusive clients cannot make a healthy
// client see a 5xx.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"chow88/internal/interp"
	"chow88/internal/parser"
	"chow88/internal/sema"
)

// The healthy workload: small call-intensive CW programs of the suite's
// character. fibV2 differs from fib only in main, so alternating the two
// on /compile-incremental exercises frontier-only replans.
const (
	srcFib = `
func fib(n int) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() {
    print(fib(17));
    print(fib(9));
}
`
	srcFibV2 = `
func fib(n int) int {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func main() {
    print(fib(16));
    print(fib(9));
}
`
	srcSum = `
func addmul(a int, b int) int { return a * 3 + b; }
func step(acc int, i int) int { return addmul(acc, i) % 100003; }
func main() {
    var i int;
    var acc int;
    acc = 7;
    for (i = 0; i < 2000; i = i + 1) { acc = step(acc, i); }
    print(acc);
}
`
)

// Options configure one load-generation session.
type Options struct {
	// BaseURL is the daemon's HTTP root (e.g. http://127.0.0.1:8377).
	// With SocketPath set, the host part is cosmetic.
	BaseURL string
	// SocketPath dials the daemon's unix socket instead of TCP.
	SocketPath string
	// Clients is the healthy concurrency; Requests is per-client.
	Clients  int
	Requests int
	// TimeoutMS is the per-request budget sent in each healthy request
	// (0: server default).
	TimeoutMS int
	// Slowloris opens that many raw connections which drip bytes and
	// never finish a request; SlowlorisHold bounds how long each holds on.
	Slowloris     int
	SlowlorisHold time.Duration
	// Oversized sends that many bodies of OversizedBytes (default 2 MiB),
	// expecting admission-time rejection.
	Oversized      int
	OversizedBytes int64
}

// Summary is the session's outcome.
type Summary struct {
	Sent     int         `json:"sent"`
	OK       int         `json:"ok"`
	Statuses map[int]int `json:"statuses"`
	// Healthy5xx counts 5xx answers to healthy requests — the number the
	// e2e gate requires to be zero while abuse runs alongside.
	Healthy5xx int `json:"healthy_5xx"`
	// OracleMismatches counts /run outputs that differed from the
	// reference interpreter.
	OracleMismatches int `json:"oracle_mismatches"`
	// Retried429 counts healthy requests re-sent after a 429, paced by the
	// daemon's Retry-After hint.
	Retried429 int           `json:"retried_429"`
	Wall       time.Duration `json:"wall_ns"`
	ReqPerSec  float64       `json:"req_per_sec"`
	P50        time.Duration `json:"p50_ns"`
	P99        time.Duration `json:"p99_ns"`
	// SlowlorisClosed counts slow connections the server terminated
	// before the hold expired (the read-timeout defense working).
	SlowlorisClosed int `json:"slowloris_closed"`
	// OversizedRejected counts oversized bodies answered with 413.
	OversizedRejected int `json:"oversized_rejected"`
}

func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sent %d  ok %d  healthy-5xx %d  oracle-mismatches %d  retried-429 %d\n",
		s.Sent, s.OK, s.Healthy5xx, s.OracleMismatches, s.Retried429)
	fmt.Fprintf(&b, "wall %v  req/s %.1f  p50 %v  p99 %v\n", s.Wall.Round(time.Millisecond), s.ReqPerSec, s.P50.Round(time.Microsecond), s.P99.Round(time.Microsecond))
	codes := make([]int, 0, len(s.Statuses))
	for c := range s.Statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, "  http %d: %d\n", c, s.Statuses[c])
	}
	if s.SlowlorisClosed > 0 || s.OversizedRejected > 0 {
		fmt.Fprintf(&b, "  slowloris closed by server: %d  oversized rejected: %d\n", s.SlowlorisClosed, s.OversizedRejected)
	}
	return b.String()
}

// Retry policy for 429 answers: a few attempts, each paced by the server's
// Retry-After hint clamped so an outsized hint cannot stall the session.
const (
	maxRetries429 = 3
	maxRetryWait  = 2 * time.Second
)

// retryDelay parses a Retry-After seconds value; malformed or missing
// values fall back to one second.
func retryDelay(h string) time.Duration {
	sec, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || sec < 0 {
		return time.Second
	}
	d := time.Duration(sec) * time.Second
	if d > maxRetryWait {
		d = maxRetryWait
	}
	return d
}

// interpret runs src on the reference AST interpreter (the oracle).
func interpret(src string) ([]int64, error) {
	tree, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := sema.Check(tree)
	if err != nil {
		return nil, err
	}
	res, err := interp.Run(info, interp.Options{})
	if res == nil {
		return nil, err
	}
	return res.Output, err
}

// Run executes the session and blocks until all traffic has resolved.
func Run(opts Options) (*Summary, error) {
	if opts.Clients <= 0 {
		opts.Clients = 4
	}
	if opts.Requests <= 0 {
		opts.Requests = 10
	}
	if opts.SlowlorisHold <= 0 {
		opts.SlowlorisHold = 3 * time.Second
	}
	if opts.OversizedBytes <= 0 {
		opts.OversizedBytes = 2 << 20
	}
	if opts.BaseURL == "" {
		opts.BaseURL = "http://chowd"
	}
	opts.BaseURL = strings.TrimRight(opts.BaseURL, "/")

	client := &http.Client{Timeout: 2 * time.Minute}
	if opts.SocketPath != "" {
		client.Transport = &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", opts.SocketPath)
			},
		}
	}

	oracles := map[string][]int64{}
	for _, src := range []string{srcFib, srcFibV2, srcSum} {
		out, err := interpret(src)
		if err != nil {
			return nil, fmt.Errorf("loadgen: oracle: %w", err)
		}
		oracles[src] = out
	}

	sum := &Summary{Statuses: map[int]int{}}
	var mu sync.Mutex
	var lats []time.Duration
	record := func(status int, ok bool, lat time.Duration, healthy bool, mismatch bool) {
		mu.Lock()
		defer mu.Unlock()
		sum.Sent++
		sum.Statuses[status]++
		if ok {
			sum.OK++
		}
		if healthy && status >= 500 {
			sum.Healthy5xx++
		}
		if mismatch {
			sum.OracleMismatches++
		}
		if lat > 0 {
			lats = append(lats, lat)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup

	// Healthy clients: a rotating compile / run / incremental mix.
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			clientKey := fmt.Sprintf("loadgen-%d", c)
			for i := 0; i < opts.Requests; i++ {
				endpoint, src := "/run", srcFib
				switch i % 4 {
				case 1:
					endpoint, src = "/compile", srcSum
				case 2:
					endpoint, src = "/compile-incremental", srcFib
				case 3:
					endpoint, src = "/run", srcSum
				}
				if endpoint == "/compile-incremental" && i%8 == 6 {
					src = srcFibV2
				}
				body, _ := json.Marshal(map[string]any{
					"source": src, "client": clientKey, "timeout_ms": opts.TimeoutMS,
				})
				t0 := time.Now()
				resp, err := client.Post(opts.BaseURL+endpoint, "application/json", bytes.NewReader(body))
				// Honor the daemon's admission backpressure: a 429 carries a
				// Retry-After derived from the queue's drain rate, so re-send
				// after that pause (bounded attempts, capped wait). A 503 is
				// final — the daemon is draining and will not come back.
				for attempt := 0; err == nil && resp.StatusCode == http.StatusTooManyRequests && attempt < maxRetries429; attempt++ {
					delay := retryDelay(resp.Header.Get("Retry-After"))
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					mu.Lock()
					sum.Retried429++
					mu.Unlock()
					time.Sleep(delay)
					resp, err = client.Post(opts.BaseURL+endpoint, "application/json", bytes.NewReader(body))
				}
				lat := time.Since(t0)
				if err != nil {
					record(0, false, 0, true, false)
					continue
				}
				var r struct {
					OK     bool    `json:"ok"`
					Output []int64 `json:"output"`
				}
				derr := json.NewDecoder(resp.Body).Decode(&r)
				resp.Body.Close()
				mismatch := false
				if derr == nil && r.OK && endpoint == "/run" {
					mismatch = fmt.Sprint(r.Output) != fmt.Sprint(oracles[src])
				}
				record(resp.StatusCode, derr == nil && r.OK, lat, true, mismatch)
			}
		}(c)
	}

	// Slowloris connections: drip one header byte at a time and wait for
	// the server's read timeout to cut us off.
	for i := 0; i < opts.Slowloris; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			closed := slowloris(opts)
			mu.Lock()
			if closed {
				sum.SlowlorisClosed++
			}
			mu.Unlock()
		}()
	}

	// Oversized bodies: expect a 413 after MaxBytesReader trips.
	for i := 0; i < opts.Oversized; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			huge := fmt.Sprintf(`{"source":%q}`, strings.Repeat("// padding padding padding\n", int(opts.OversizedBytes/27)+1))
			resp, err := client.Post(opts.BaseURL+"/compile", "application/json", strings.NewReader(huge))
			if err != nil {
				record(0, false, 0, false, false)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			record(resp.StatusCode, false, 0, false, false)
			if resp.StatusCode == http.StatusRequestEntityTooLarge {
				mu.Lock()
				sum.OversizedRejected++
				mu.Unlock()
			}
		}()
	}

	wg.Wait()
	sum.Wall = time.Since(start)
	if sum.Wall > 0 {
		sum.ReqPerSec = float64(len(lats)) / sum.Wall.Seconds()
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		sum.P50 = lats[n/2]
		sum.P99 = lats[min(n-1, n*99/100)]
	}
	return sum, nil
}

// slowloris opens one connection, sends a partial request at one byte per
// tick, and reports whether the server closed it before the hold expired.
func slowloris(opts Options) bool {
	var conn net.Conn
	var err error
	if opts.SocketPath != "" {
		conn, err = net.DialTimeout("unix", opts.SocketPath, 5*time.Second)
	} else {
		conn, err = net.DialTimeout("tcp", strings.TrimPrefix(opts.BaseURL, "http://"), 5*time.Second)
	}
	if err != nil {
		return false
	}
	defer conn.Close()
	partial := "POST /run HTTP/1.1\r\nHost: chowd\r\nContent-Type: application/json\r\nContent-Length: 1000000\r\nX-Drip: "
	deadline := time.Now().Add(opts.SlowlorisHold)
	conn.SetDeadline(deadline)
	for i := 0; time.Now().Before(deadline); i++ {
		var b byte = 'z'
		if i < len(partial) {
			b = partial[i]
		}
		if _, err := conn.Write([]byte{b}); err != nil {
			return true // server cut the connection
		}
		// A server that answered (408/400) and closed also counts as a
		// defended connection: it refused to hold the slot open.
		conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		if _, err := conn.Read(make([]byte, 256)); err == nil || !isTimeout(err) {
			return true
		}
		conn.SetReadDeadline(deadline)
	}
	return false
}

func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
