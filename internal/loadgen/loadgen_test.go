package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"chow88/internal/daemon"
)

func TestRetryDelay(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"1", time.Second},
		{"2", 2 * time.Second},
		{"0", 0},
		{" 1 ", time.Second},
		{"60", maxRetryWait}, // an outsized hint cannot stall the session
		{"", time.Second},
		{"soon", time.Second},
		{"-3", time.Second},
	}
	for _, c := range cases {
		if got := retryDelay(c.in); got != c.want {
			t.Errorf("retryDelay(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestHealthyClientsRetryOn429 saturates a one-worker daemon with a tiny
// queue: healthy clients must absorb queue-full answers by honoring
// Retry-After (bounded re-sends), so a transiently saturated daemon costs
// latency, not failed requests.
func TestHealthyClientsRetryOn429(t *testing.T) {
	s, err := daemon.NewServer(daemon.Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	sum, err := Run(Options{BaseURL: ts.URL, Clients: 6, Requests: 4})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Healthy5xx > 0 || sum.OracleMismatches > 0 {
		t.Fatalf("unhealthy session: %s", sum)
	}
	// 6 clients against 1 worker + 1 queue slot must have collided; the
	// final status histogram still shows the retries resolved most of them.
	if sum.Retried429 == 0 {
		t.Logf("no 429s under this scheduling; histogram: %v", sum.Statuses)
	}
	if sum.OK == 0 {
		t.Fatalf("nothing succeeded: %s", sum)
	}
}
