package chow88

import (
	"reflect"
	"strings"
	"testing"
)

const unitMath = `
func square(x int) int { return x * x; }
func cube(x int) int { return square(x) * x; }
`

const unitMain = `
extern func square(x int) int;
extern func cube(x int) int;

func main() {
    print(square(5));
    print(cube(3));
}
`

// TestLinkUnits: cross-unit extern declarations resolve against defining
// units (§7), and the linked whole program allocates inter-procedurally —
// the imported functions become closed.
func TestLinkUnits(t *testing.T) {
	prog, err := CompileUnits(ModeC(), unitMath, unitMain)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{25, 27}
	if !reflect.DeepEqual(res.Output, want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
	sq := prog.Module.Lookup("square")
	if fp := prog.Plan.Funcs[sq]; fp == nil || fp.Open {
		t.Errorf("linked square should be closed to the allocator")
	}
}

// TestCompileSeparate: without linking, the imported functions stay open and
// the program still runs identically — only the allocator's knowledge
// differs.
func TestCompileSeparate(t *testing.T) {
	linked, err := CompileUnits(ModeC(), unitMath, unitMain)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := CompileSeparate(ModeC(), unitMath, unitMain)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := linked.Run()
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sep.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lres.Output, sres.Output) {
		t.Fatalf("outputs differ: %v vs %v", lres.Output, sres.Output)
	}
	sq := sep.Module.Lookup("square")
	if fp := sep.Plan.Funcs[sq]; fp == nil || !fp.Open {
		t.Errorf("separately compiled square must be open")
	}
	// The paper's point: linking can only help (or tie) the save/restore
	// traffic, since the allocator gains exact summaries.
	if lres.Stats.SaveRestoreLS() > sres.Stats.SaveRestoreLS() {
		t.Errorf("linking increased save/restore traffic: %d vs %d",
			lres.Stats.SaveRestoreLS(), sres.Stats.SaveRestoreLS())
	}
}

func TestLinkErrors(t *testing.T) {
	if _, err := LinkUnits(); err == nil {
		t.Error("no units must fail")
	}
	_, err := LinkUnits("func f() int { return 1; } func main() {}", "func f() int { return 2; }")
	if err == nil || !strings.Contains(err.Error(), "defined in unit") {
		t.Errorf("duplicate definition not caught: %v", err)
	}
	_, err = LinkUnits("var g int; func main() {}", "var g int;")
	if err == nil || !strings.Contains(err.Error(), "global g") {
		t.Errorf("duplicate global not caught: %v", err)
	}
	if _, err := LinkUnits("func f( {"); err == nil {
		t.Error("parse errors must propagate")
	}
}

// TestLinkKeepsTrueExterns: an extern no unit defines stays extern and
// calling it traps, as in single-unit compilation.
func TestLinkKeepsTrueExterns(t *testing.T) {
	prog, err := CompileUnits(ModeC(), `
extern func mystery(x int) int;
func main() { print(mystery(1)); }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(); err == nil {
		t.Error("calling a true extern should trap")
	}
}

// TestLinkThreeUnits exercises a longer import chain across units.
func TestLinkThreeUnits(t *testing.T) {
	u1 := `func base(x int) int { return x + 1; }`
	u2 := `
extern func base(x int) int;
func mid(x int) int { return base(x) * 2; }`
	u3 := `
extern func mid(x int) int;
func main() { print(mid(10)); }`
	prog, err := CompileUnits(ModeC(), u1, u2, u3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Output, []int64{22}) {
		t.Fatalf("output = %v", res.Output)
	}
}
