package chow88

import (
	"reflect"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/progen"
	"chow88/internal/sim"
)

// requireEnginesAgree runs a compiled image on both simulator engines with
// profiling on and requires bit-identical Output, Stats, InstrCounts and
// error text — the fidelity contract behind every pixie number the paper's
// tables report.
func requireEnginesAgree(t *testing.T, label string, prog *Program, opts sim.Options) (*sim.Result, error) {
	t.Helper()
	fast, ferr := sim.Run(prog.Code, opts)
	ref, rerr := sim.RunReference(prog.Code, opts)
	switch {
	case (ferr == nil) != (rerr == nil):
		t.Fatalf("%s: engines disagree on error:\nfast: %v\n ref: %v", label, ferr, rerr)
	case ferr != nil && ferr.Error() != rerr.Error():
		t.Fatalf("%s: engines disagree on error text:\nfast: %v\n ref: %v", label, ferr, rerr)
	}
	if !reflect.DeepEqual(fast.Output, ref.Output) {
		t.Fatalf("%s: output diverged\nfast: %v\n ref: %v", label, fast.Output, ref.Output)
	}
	if fast.Stats != ref.Stats {
		t.Fatalf("%s: stats diverged\nfast: %+v\n ref: %+v", label, fast.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(fast.InstrCounts, ref.InstrCounts) {
		t.Fatalf("%s: instruction counts diverged", label)
	}
	return fast, ferr
}

// TestEnginesBitIdenticalOnSuite runs every suite program under all six
// measurement modes on the predecoded engine, the reference interpreter
// and (for output) the AST interpreter, asserting exact agreement.
func TestEnginesBitIdenticalOnSuite(t *testing.T) {
	progs := benchprog.All()
	if testing.Short() {
		progs = progs[:4]
	}
	for _, bp := range progs {
		want, err := Interpret(bp.Source)
		if err != nil {
			t.Fatalf("%s: interp: %v", bp.Name, err)
		}
		for _, mode := range allModes() {
			label := bp.Name + "/" + mode.Name
			prog, err := Compile(bp.Source, mode)
			if err != nil {
				t.Fatalf("%s: compile: %v", label, err)
			}
			res, err := requireEnginesAgree(t, label, prog, sim.Options{Profile: true})
			if err != nil {
				t.Fatalf("%s: run: %v", label, err)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("%s: output != interpreter\n got: %v\nwant: %v", label, res.Output, want)
			}
		}
	}
}

// TestEnginesRandomPrograms sweeps randomized programs through both
// engines. Errors (budget exhaustion, traps) must match exactly too, so
// the sweep exercises the fast engine's precise trap paths as well as its
// happy path.
func TestEnginesRandomPrograms(t *testing.T) {
	seeds := 80
	if testing.Short() {
		seeds = 15
	}
	modes := []Mode{ModeBase(), ModeC()}
	for seed := 0; seed < seeds; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		for _, mode := range modes {
			prog, err := Compile(src, mode)
			if err != nil {
				t.Fatalf("seed %d [%s]: compile: %v\n%s", seed, mode.Name, err, src)
			}
			label := mode.Name
			requireEnginesAgree(t, label, prog, sim.Options{Profile: true, MaxInstrs: 2_000_000})
		}
	}
}
