package chow88

import (
	"reflect"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/progen"
	"chow88/internal/sim"
)

// requireEnginesAgree runs a compiled image on all three simulator tiers
// with profiling on and requires the fast and native engines bit-identical
// to the reference oracle — Output, Stats, InstrCounts and error text —
// the fidelity contract behind every pixie number the paper's tables
// report. It returns the native tier's result and error.
func requireEnginesAgree(t *testing.T, label string, prog *Program, opts sim.Options) (*sim.Result, error) {
	t.Helper()
	ref, rerr := sim.RunReference(prog.Code, opts)
	var res *sim.Result
	var err error
	for _, engine := range []string{"fast", "native"} {
		o := opts
		o.Engine = engine
		res, err = sim.Run(prog.Code, o)
		switch {
		case (err == nil) != (rerr == nil):
			t.Fatalf("%s: %s vs reference disagree on error:\n%s: %v\nref: %v", label, engine, engine, err, rerr)
		case err != nil && err.Error() != rerr.Error():
			t.Fatalf("%s: %s vs reference disagree on error text:\n%s: %v\nref: %v", label, engine, engine, err, rerr)
		}
		if !reflect.DeepEqual(res.Output, ref.Output) {
			t.Fatalf("%s: %s output diverged\n%s: %v\nref: %v", label, engine, engine, res.Output, ref.Output)
		}
		if res.Stats != ref.Stats {
			t.Fatalf("%s: %s stats diverged from reference:\n%s", label, engine, res.Stats.Diff(&ref.Stats))
		}
		if !reflect.DeepEqual(res.InstrCounts, ref.InstrCounts) {
			t.Fatalf("%s: %s instruction counts diverged", label, engine)
		}
	}
	return res, err
}

// TestEnginesBitIdenticalOnSuite runs every suite program under all six
// measurement modes on the predecoded engine, the reference interpreter
// and (for output) the AST interpreter, asserting exact agreement.
func TestEnginesBitIdenticalOnSuite(t *testing.T) {
	progs := benchprog.All()
	if testing.Short() {
		progs = progs[:4]
	}
	for _, bp := range progs {
		want, err := Interpret(bp.Source)
		if err != nil {
			t.Fatalf("%s: interp: %v", bp.Name, err)
		}
		for _, mode := range allModes() {
			label := bp.Name + "/" + mode.Name
			prog, err := Compile(bp.Source, mode)
			if err != nil {
				t.Fatalf("%s: compile: %v", label, err)
			}
			res, err := requireEnginesAgree(t, label, prog, sim.Options{Profile: true})
			if err != nil {
				t.Fatalf("%s: run: %v", label, err)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("%s: output != interpreter\n got: %v\nwant: %v", label, res.Output, want)
			}
		}
	}
}

// TestEnginesRandomPrograms sweeps randomized programs through both
// engines. Errors (budget exhaustion, traps) must match exactly too, so
// the sweep exercises the fast engine's precise trap paths as well as its
// happy path.
func TestEnginesRandomPrograms(t *testing.T) {
	seeds := 80
	if testing.Short() {
		seeds = 15
	}
	modes := []Mode{ModeBase(), ModeC()}
	for seed := 0; seed < seeds; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		for _, mode := range modes {
			prog, err := Compile(src, mode)
			if err != nil {
				t.Fatalf("seed %d [%s]: compile: %v\n%s", seed, mode.Name, err, src)
			}
			label := mode.Name
			requireEnginesAgree(t, label, prog, sim.Options{Profile: true, MaxInstrs: 2_000_000})
		}
	}
}
