package chow88

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"chow88/internal/daemon"
	"chow88/internal/loadgen"
)

// BenchmarkDaemonSaturation measures chowd under saturation: 8 concurrent
// healthy clients against worker pools of increasing size, reporting
// throughput and tail latency as custom metrics (req/s, p50-ms, p99-ms).
// Comparing the workers=1/2/4 rows shows how far the daemon's admission
// and worker-pool design scales before queueing dominates; `make
// benchjson` snapshots the rows into the BENCH_*.json trajectory.
func BenchmarkDaemonSaturation(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s, err := daemon.NewServer(daemon.Config{Workers: workers, QueueDepth: 64})
			if err != nil {
				b.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer func() {
				ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				s.Shutdown(ctx)
			}()

			b.ResetTimer()
			sum, err := loadgen.Run(loadgen.Options{
				BaseURL: ts.URL,
				Clients: 8,
				// b.N scales the per-client request count, so -benchtime
				// stretches the measurement window, not the fleet size.
				Requests: 4 * b.N,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if sum.Healthy5xx > 0 || sum.OracleMismatches > 0 {
				b.Fatalf("saturation run went unhealthy: %s", sum)
			}
			b.ReportMetric(sum.ReqPerSec, "req/s")
			b.ReportMetric(float64(sum.P50)/1e6, "p50-ms")
			b.ReportMetric(float64(sum.P99)/1e6, "p99-ms")
		})
	}
}
