package chow88

import "chow88/internal/classify"

// Exit codes, one per failure class. chowcc exits with these directly; the
// chowd daemon maps the same classes onto HTTP statuses (see the
// error-code table in README), so scripts and clients triage failures
// without parsing messages whichever surface they speak to. The mapping
// itself lives in internal/classify so the daemon (which sits below this
// package) shares it.
const (
	ExitOK        = classify.ExitOK
	ExitInternal  = classify.ExitInternal
	ExitUsage     = classify.ExitUsage
	ExitParse     = classify.ExitParse
	ExitSema      = classify.ExitSema
	ExitValidate  = classify.ExitValidate
	ExitCodegen   = classify.ExitCodegen
	ExitTrap      = classify.ExitTrap
	ExitBudget    = classify.ExitBudget
	ExitDeadline  = classify.ExitDeadline
	ExitBadEngine = classify.ExitBadEngine
	ExitBadBudget = classify.ExitBadBudget
	ExitBadConv   = classify.ExitBadConv
)

// ClassifyError maps an error from Compile/Run (or any of their variants)
// to its failure class: the chowcc exit code and the label of the one-line
// diagnostic. Unrecognized errors are internal errors.
func ClassifyError(err error) (code int, label string) {
	return classify.Error(err)
}
