package chow88

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/front"
	"chow88/internal/mcode"
	"chow88/internal/obs"
	"chow88/internal/sim"
)

// TestObsDifferential is the layer's core contract: turning tracing and
// metrics on must not change a single byte of generated code or a single
// trace statistic — observability observes, it never steers.
func TestObsDifferential(t *testing.T) {
	forceParallel(t)
	src := benchprog.All()[0].Source

	obs.End() // make sure the baseline really runs dark
	plain, err := Compile(src, ModeC())
	if err != nil {
		t.Fatal(err)
	}
	plainRes, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report != nil || plainRes.Report != nil {
		t.Fatal("reports attached with observability disabled")
	}

	s := obs.Begin(obs.Options{Trace: true})
	defer obs.End()
	traced, err := Compile(src, ModeC())
	if err != nil {
		t.Fatal(err)
	}
	tracedRes, err := traced.Run()
	if err != nil {
		t.Fatal(err)
	}

	if plain.Disassemble() != traced.Disassemble() {
		t.Error("generated code changed when observability was enabled")
	}
	if plainRes.Stats != tracedRes.Stats {
		t.Errorf("trace stats changed when observability was enabled:\noff: %+v\n on: %+v",
			plainRes.Stats, tracedRes.Stats)
	}

	cr := traced.Report
	if cr == nil {
		t.Fatal("no CompileReport attached with a session active")
	}
	if cr.Counter("plan.funcs_planned") == 0 || cr.PhaseNanos("plan") == 0 {
		t.Errorf("compile report missing allocator activity:\n%s", cr.Table())
	}
	rr := tracedRes.Report
	if rr == nil {
		t.Fatal("no RunReport attached with a session active")
	}
	if rr.Engine != "native" || tracedRes.Engine != "native" {
		t.Errorf("engine = %q/%q, want native", rr.Engine, tracedRes.Engine)
	}
	if rr.Counter("sim.block_entries") == 0 || len(rr.SuperHits) == 0 {
		t.Errorf("run report missing engine activity:\n%s", rr.Table())
	}
	if rr.Counter("sim.runs_native") == 0 {
		t.Errorf("run report missing native-tier selection:\n%s", rr.Table())
	}
	if rr.Counter("sim.native_fallbacks") != 0 {
		t.Errorf("native tier fell back on a clean program:\n%s", rr.Table())
	}

	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) < 2 {
		t.Errorf("trace has %d events, want the pipeline's spans", len(f.TraceEvents))
	}
}

// TestFallbackReasonSurfaced checks satellite behavior around the fast
// engine's bail-out: an image the static verifier rejects must run on the
// reference engine with the reason on the result, not silently.
func TestFallbackReasonSurfaced(t *testing.T) {
	prog, err := Compile(benchprog.All()[0].Source, ModeBase())
	if err != nil {
		t.Fatal(err)
	}
	want, err := prog.Run()
	if err != nil {
		t.Fatal(err)
	}
	// A function spanning [0,0) fails Verify but is unreachable — the
	// reference interpreter executes the image unchanged.
	bad := &mcode.Program{
		Code:     prog.Code.Code,
		Funcs:    append(append([]*mcode.FuncInfo{}, prog.Code.Funcs...), &mcode.FuncInfo{Name: "bogus"}),
		DataSize: prog.Code.DataSize,
	}

	s := obs.Begin(obs.Options{})
	defer obs.End()
	snap := s.Snap()
	res, err := sim.Run(bad, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "reference" {
		t.Errorf("engine = %q, want reference", res.Engine)
	}
	if !strings.Contains(res.FallbackReason, "bogus") {
		t.Errorf("FallbackReason = %q, want the verifier's complaint about func bogus", res.FallbackReason)
	}
	if res.Report == nil || res.Report.FallbackReason != res.FallbackReason {
		t.Error("RunReport does not carry the fallback reason")
	}
	if got := s.ReportSince(snap).Counter("sim.verify_fallbacks"); got != 1 {
		t.Errorf("sim.verify_fallbacks = %d, want 1", got)
	}
	if len(res.Output) != len(want.Output) {
		t.Fatalf("reference fallback output length %d, want %d", len(res.Output), len(want.Output))
	}
	for i := range res.Output {
		if res.Output[i] != want.Output[i] {
			t.Fatalf("reference fallback output diverged at %d", i)
		}
	}
}

// TestCompileProfiledReports checks that profile-feedback builds report the
// training window separately from the final build.
func TestCompileProfiledReports(t *testing.T) {
	obs.Begin(obs.Options{})
	defer obs.End()
	prog, err := CompileProfiled(benchprog.All()[0].Source, ModeC())
	if err != nil {
		t.Fatal(err)
	}
	cr := prog.Report
	if cr == nil || cr.Training == nil {
		t.Fatal("CompileProfiled did not attach a report with a training window")
	}
	if cr.Training.PhaseNanos("run") == 0 {
		t.Errorf("training window shows no simulator run:\n%s", cr.Table())
	}
	if cr.Counter("plan.funcs_planned") == 0 {
		t.Errorf("final-build window shows no allocation:\n%s", cr.Table())
	}
}

// TestFrontCacheStats checks the always-on cache accessor (it must answer
// without any obs session).
func TestFrontCacheStats(t *testing.T) {
	obs.End()
	// A source no other test compiles, so the first build must miss.
	src := "// cachestats probe\nfunc main() { print(41 + 1); }\n"
	before := front.CacheStats()
	if _, err := Compile(src, ModeBase()); err != nil {
		t.Fatal(err)
	}
	mid := front.CacheStats()
	if mid.Misses != before.Misses+1 {
		t.Errorf("misses %d -> %d, want one more", before.Misses, mid.Misses)
	}
	if _, err := Compile(src, ModeBase()); err != nil {
		t.Fatal(err)
	}
	after := front.CacheStats()
	if after.Hits != mid.Hits+1 {
		t.Errorf("hits %d -> %d, want one more", mid.Hits, after.Hits)
	}
	if after.Entries == 0 || after.Cap == 0 {
		t.Errorf("cache occupancy unreported: %+v", after)
	}
}
