package chow88

import (
	"fmt"

	"chow88/internal/ast"
	"chow88/internal/front"
	"chow88/internal/parser"
)

// LinkUnits implements the paper's §7 compilation setting: "our compiler
// system allows the Ucode from separate program units and from libraries to
// be linked together", so the one-pass inter-procedural allocator sees the
// whole program. Each source unit may declare functions it imports from
// other units as extern; linking replaces those declarations with the
// defining unit's bodies. The result is a single program AST ready for
// whole-program compilation.
//
// Duplicate definitions across units are an error; extern declarations that
// no unit defines remain extern (truly external code, open to the
// allocator).
func LinkUnits(srcs ...string) (*ast.Program, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("link: no units")
	}
	type funcOrigin struct {
		unit int
		decl *ast.FuncDecl
	}
	defs := map[string]funcOrigin{}
	globals := map[string]int{}
	var units []*ast.Program
	for i, src := range srcs {
		unit, err := parser.Parse(src)
		if err != nil {
			// Classified like any single-unit parse failure (front.StageError),
			// with the unit attributed.
			return nil, &front.StageError{Stage: "parse", Err: fmt.Errorf("link: unit %d: %w", i+1, err)}
		}
		units = append(units, unit)
		for _, d := range unit.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Extern {
					continue
				}
				if prev, dup := defs[d.Name]; dup {
					return nil, &front.StageError{Stage: "sema", Err: fmt.Errorf("link: %s defined in unit %d and unit %d",
						d.Name, prev.unit+1, i+1)}
				}
				defs[d.Name] = funcOrigin{unit: i, decl: d}
			case *ast.VarDecl:
				if prev, dup := globals[d.Name]; dup {
					return nil, &front.StageError{Stage: "sema", Err: fmt.Errorf("link: global %s defined in unit %d and unit %d",
						d.Name, prev+1, i+1)}
				}
				globals[d.Name] = i
			}
		}
	}

	linked := &ast.Program{}
	seenExtern := map[string]bool{}
	for _, unit := range units {
		for _, d := range unit.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			if !isFunc || !fd.Extern {
				linked.Decls = append(linked.Decls, d)
				continue
			}
			// An extern declaration resolves against another unit's
			// definition (dropped here; the definition is included where it
			// lives) or stays extern once.
			if _, defined := defs[fd.Name]; defined {
				continue
			}
			if !seenExtern[fd.Name] {
				seenExtern[fd.Name] = true
				linked.Decls = append(linked.Decls, fd)
			}
		}
	}
	return linked, nil
}

// CompileUnits links the units (§7) and compiles the whole program under
// the given mode. With a single unit it is equivalent to Compile.
func CompileUnits(mode Mode, srcs ...string) (*Program, error) {
	linked, err := LinkUnits(srcs...)
	if err != nil {
		return nil, err
	}
	return Compile(ast.Format(linked), mode)
}

// CompileUnitsIncremental is CompileUnits through the incremental path:
// the linked program is compiled with CompileIncremental against the
// statefile at statePath. The linked source is formatted
// deterministically, so unedited units hash identically across runs.
func CompileUnitsIncremental(mode Mode, statePath string, srcs ...string) (*Program, error) {
	linked, err := LinkUnits(srcs...)
	if err != nil {
		return nil, err
	}
	return CompileIncremental(ast.Format(linked), mode, statePath)
}

// CompileUnitsProfiled links the units (§7) and compiles the whole program
// with profile feedback: a baseline training build runs once to attach
// measured block frequencies before the final build under mode (which, with
// mode.Inline set, also drives the procedure integrator from those
// measurements). With a single unit it is equivalent to CompileProfiled.
func CompileUnitsProfiled(mode Mode, srcs ...string) (*Program, error) {
	linked, err := LinkUnits(srcs...)
	if err != nil {
		return nil, err
	}
	return CompileProfiled(ast.Format(linked), mode)
}

// CompileSeparate compiles the units without cross-unit linking, the
// paper's separate-compilation regime: every function that other units
// import (extern) is forced open, so its callers must assume the default
// linkage. The units are still placed into one executable image (the calls
// must resolve somewhere), making the open/closed performance difference
// measurable: same program, same image, different allocator knowledge.
func CompileSeparate(mode Mode, srcs ...string) (*Program, error) {
	linked, err := LinkUnits(srcs...)
	if err != nil {
		return nil, err
	}
	// Functions declared extern anywhere are cross-unit imports: open.
	open := map[string]bool{}
	for _, src := range srcs {
		unit, err := parser.Parse(src)
		if err != nil {
			return nil, err
		}
		for _, d := range unit.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Extern {
				open[fd.Name] = true
			}
		}
	}
	for name := range open {
		mode.ForceOpen = append(mode.ForceOpen, name)
	}
	return Compile(ast.Format(linked), mode)
}
