package chow88

import (
	"reflect"
	"testing"

	"chow88/internal/benchprog"
	"chow88/internal/progen"
)

// TestProfiledCompilationCorrect: profile feedback must never change
// program semantics, across the suite and random programs.
func TestProfiledCompilationCorrect(t *testing.T) {
	for _, b := range benchprog.All()[:6] {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			want, err := Interpret(b.Source)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := CompileProfiled(b.Source, ModeC())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			res, err := prog.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !reflect.DeepEqual(res.Output, want) {
				t.Errorf("output = %v, want %v", res.Output, want)
			}
		})
	}
}

func TestProfiledRandomPrograms(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	for seed := 0; seed < n; seed++ {
		src := progen.Generate(int64(seed), progen.DefaultConfig())
		want, ok := oracle(src)
		if !ok {
			continue
		}
		prog, err := CompileProfiled(src, ModeC())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if !reflect.DeepEqual(res.Output, want) {
			t.Fatalf("seed %d: output mismatch\n got %v\nwant %v\n%s", seed, res.Output, want, src)
		}
	}
}

// TestProfileSkewsPlacement: with a measured profile showing the expensive
// region is rarely executed, save/restore traffic should not exceed the
// static-estimate build's (and typically improves when the static estimate
// guessed wrong).
func TestProfileSkewsPlacement(t *testing.T) {
	// The loop around q runs 400x, the loop around r runs twice — but both
	// loops have static depth 1, so the static estimate cannot tell them
	// apart. The profile can.
	src := `
var g int;
func q(v int) int { return v + 1; }
func r(v int) int {
    var a int;
    var b int;
    a = q(v);
    b = q(v + 1);
    return a * b + g;
}
func p() int {
    var x int;
    var acc int;
    var i int;
    x = 13;
    acc = 0;
    for (i = 0; i < 400; i = i + 1) {
        acc = acc + q(i) + x;
    }
    for (i = 0; i < 2; i = i + 1) {
        acc = acc + r(i) + x;
    }
    return acc;
}
func main() { print(p()); }`
	static, err := Compile(src, ModeC())
	if err != nil {
		t.Fatal(err)
	}
	sres, err := static.Run()
	if err != nil {
		t.Fatal(err)
	}
	profiled, err := CompileProfiled(src, ModeC())
	if err != nil {
		t.Fatal(err)
	}
	pres, err := profiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sres.Output, pres.Output) {
		t.Fatalf("outputs differ: %v vs %v", sres.Output, pres.Output)
	}
	if pres.Stats.SaveRestoreLS() > sres.Stats.SaveRestoreLS() {
		t.Errorf("profile feedback increased save/restore traffic: %d -> %d",
			sres.Stats.SaveRestoreLS(), pres.Stats.SaveRestoreLS())
	}
	t.Logf("save/restore static=%d profiled=%d cycles static=%d profiled=%d",
		sres.Stats.SaveRestoreLS(), pres.Stats.SaveRestoreLS(),
		sres.Stats.Cycles, pres.Stats.Cycles)
}
