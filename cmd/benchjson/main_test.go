package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: chow88
cpu: Intel(R) Xeon(R) CPU
BenchmarkCompile/nim/C-8         	     100	  1234567 ns/op	  345678 B/op	    4567 allocs/op
BenchmarkSim/nim/fast-8          	       3	 98765432 ns/op	     12345 paper-cycles	      42 paper-saverestore
BenchmarkInline/nim/on-8         	       1	  5555555 ns/op
PASS
ok  	chow88	12.345s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.Goos != "linux" || f.Goarch != "amd64" || f.Pkg != "chow88" {
		t.Errorf("header = %+v", f)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("got %d rows, want 3", len(f.Benchmarks))
	}
	r := f.Benchmarks[0]
	if r.Name != "BenchmarkCompile/nim/C-8" || r.N != 100 {
		t.Errorf("row 0 = %+v", r)
	}
	if r.Metrics["ns/op"] != 1234567 || r.Metrics["allocs/op"] != 4567 {
		t.Errorf("row 0 metrics = %v", r.Metrics)
	}
	if f.Benchmarks[1].Metrics["paper-saverestore"] != 42 {
		t.Errorf("custom paper metric lost: %v", f.Benchmarks[1].Metrics)
	}
	if len(f.Benchmarks[2].Metrics) != 1 {
		t.Errorf("row without -benchmem should have one metric: %v", f.Benchmarks[2].Metrics)
	}
}

// Interleaved non-benchmark noise (test log lines, chowcc diagnostics) must
// not break parsing.
func TestParseBenchTolerantOfNoise(t *testing.T) {
	noisy := strings.Replace(sample, "PASS\n",
		"chowcc: pgo: measured block frequencies attached\nsome random log line\nPASS\n", 1)
	f, err := parseBench([]byte(noisy))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 3 {
		t.Errorf("got %d rows, want 3", len(f.Benchmarks))
	}
}

func TestParseBenchEmptyInputFails(t *testing.T) {
	if _, err := parseBench([]byte("goos: linux\nPASS\n")); err == nil {
		t.Error("input without rows parsed without error")
	}
}

// A benchmark name line without results (the line go test prints before
// the result when -v interleaves) must be skipped, not mis-parsed.
func TestParseRowRejectsBareNames(t *testing.T) {
	if _, ok := parseRow("BenchmarkCompile/nim/C"); ok {
		t.Error("bare benchmark name parsed as a row")
	}
	if _, ok := parseRow("BenchmarkCompile/nim/C-8 \t notanumber ns/op"); ok {
		t.Error("malformed count parsed as a row")
	}
}
