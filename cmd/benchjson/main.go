// Command benchjson converts `go test -bench` text output into a JSON
// benchmark-trajectory document. Each benchmark row keeps its benchstat
// name and iteration count plus every reported metric — the standard
// ns/op, B/op and allocs/op and the suite's custom paper metrics
// (paper-cycles, paper-saverestore, ...) — so successive PRs can append
// comparable snapshots (BENCH_8.json and friends) without re-parsing
// bench text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./ | benchjson -o BENCH.json
//
// Input may also be a file argument. Lines that are not benchmark rows
// (goos/goarch/pkg/cpu headers, PASS/ok trailers) inform the header
// fields; anything unrecognized is ignored, so the tool tolerates
// interleaved test log output. Exit status 1 means the input held no
// benchmark rows at all.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Row is one benchmark result: the full sub-benchmark name (including the
// -cpus suffix, as benchstat keys it), the iteration count, and every
// metric the row reported, keyed by unit.
type Row struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	Metrics map[string]float64 `json:"metrics"`
}

// File is the whole document: the run's environment header and its rows.
type File struct {
	Goos       string `json:"goos,omitempty"`
	Goarch     string `json:"goarch,omitempty"`
	Pkg        string `json:"pkg,omitempty"`
	CPU        string `json:"cpu,omitempty"`
	Benchmarks []Row  `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [bench.txt]")
		os.Exit(2)
	}

	b, err := io.ReadAll(in)
	if err != nil {
		fatal(err)
	}
	file, err := parseBench(b)
	if err != nil {
		fatal(err)
	}
	doc, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s: %d rows\n", *out, len(file.Benchmarks))
}

// parseBench extracts the environment header and benchmark rows from go
// test -bench output. An input with no rows is an error: it usually means
// the -bench pattern matched nothing.
func parseBench(b []byte) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(bytes.NewReader(b))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			f.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			f.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			f.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			f.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if row, ok := parseRow(line); ok {
				f.Benchmarks = append(f.Benchmarks, row)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark rows in input")
	}
	return f, nil
}

// parseRow parses one result line: name, iteration count, then
// value/unit pairs ("123456 ns/op", "4096 paper-saverestore").
func parseRow(line string) (Row, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Row{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Row{}, false
	}
	row := Row{Name: fields[0], N: n, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Row{}, false
		}
		row.Metrics[fields[i+1]] = v
	}
	return row, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
