package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestChowdE2E is the daemon's end-to-end gate: build the real chowd and
// chowload binaries, serve on a loopback unix socket, drive a mixed
// workload with slowloris and oversized abuse alongside, and require
// zero 5xx for healthy clients, zero oracle mismatches, defended abuse,
// and a clean SIGTERM drain with an in-flight request still completing.
func TestChowdE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and serves real traffic")
	}
	dir := t.TempDir()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	build := exec.Command("go", "build", "-o", dir, "./cmd/chowd", "./cmd/chowload")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	sock := filepath.Join(dir, "chowd.sock")
	logf, err := os.Create(filepath.Join(dir, "chowd.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()
	daemonCmd := exec.Command(filepath.Join(dir, "chowd"),
		"-addr", "", "-socket", sock, "-workers", "2",
		"-read-timeout", "2s", "-read-header-timeout", "1s",
		"-drain-timeout", "10s")
	daemonCmd.Stdout = logf
	daemonCmd.Stderr = logf
	if err := daemonCmd.Start(); err != nil {
		t.Fatalf("start chowd: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemonCmd.Wait() }()
	defer daemonCmd.Process.Kill()

	waitForSocket(t, sock, exited)

	// Mixed workload: healthy clients with slowloris and oversized abuse
	// running alongside them.
	load := exec.Command(filepath.Join(dir, "chowload"),
		"-socket", sock, "-clients", "4", "-n", "12",
		"-slowloris", "2", "-slowloris-hold", "2s", "-oversized", "2", "-json")
	out, err := load.Output()
	if err != nil {
		t.Fatalf("chowload: %v\n%s", err, out)
	}
	var sum struct {
		Sent              int         `json:"sent"`
		OK                int         `json:"ok"`
		Statuses          map[int]int `json:"statuses"`
		Healthy5xx        int         `json:"healthy_5xx"`
		OracleMismatches  int         `json:"oracle_mismatches"`
		SlowlorisClosed   int         `json:"slowloris_closed"`
		OversizedRejected int         `json:"oversized_rejected"`
	}
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatalf("chowload output: %v\n%s", err, out)
	}
	if sum.Healthy5xx != 0 {
		t.Errorf("healthy clients saw %d 5xx answers:\n%s", sum.Healthy5xx, out)
	}
	if sum.OracleMismatches != 0 {
		t.Errorf("%d /run outputs diverged from the oracle:\n%s", sum.OracleMismatches, out)
	}
	if sum.OK < 4*12 {
		t.Errorf("only %d/%d healthy requests succeeded:\n%s", sum.OK, 4*12, out)
	}
	if sum.SlowlorisClosed != 2 {
		t.Errorf("server closed %d/2 slowloris connections:\n%s", sum.SlowlorisClosed, out)
	}
	if sum.OversizedRejected != 2 {
		t.Errorf("server rejected %d/2 oversized bodies:\n%s", sum.OversizedRejected, out)
	}

	// Start an in-flight slow request, then SIGTERM mid-run: the drain
	// must answer it (its own deadline classifies it) and exit clean.
	slowDone := make(chan int, 1)
	go func() {
		status, err := postUnix(sock, "/run", fmt.Sprintf(`{"source":%q,"timeout_ms":1500}`, slowSrc))
		if err != nil {
			status = -1
		}
		slowDone <- status
	}()
	time.Sleep(300 * time.Millisecond)
	if err := daemonCmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case status := <-slowDone:
		if status != 504 && status != 200 {
			t.Errorf("in-flight request during drain: status %d, want an answer (504 or 200)", status)
		}
	case <-time.After(8 * time.Second):
		t.Error("in-flight request never answered during drain")
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Errorf("chowd exit after SIGTERM: %v (want clean 0)", err)
		}
	case <-time.After(12 * time.Second):
		t.Fatal("chowd did not exit after SIGTERM")
	}
	logb, _ := os.ReadFile(logf.Name())
	if !strings.Contains(string(logb), "drained clean") {
		t.Errorf("chowd log missing clean-drain line:\n%s", logb)
	}
}

const slowSrc = `
func spin(n int) int {
    var i int;
    var acc int;
    acc = 0;
    for (i = 0; i < n; i = i + 1) { acc = acc + i; }
    return acc;
}
func main() {
    var j int;
    var acc int;
    acc = 0;
    for (j = 0; j < 1000000; j = j + 1) { acc = acc + spin(1000); }
    print(acc);
}
`

func waitForSocket(t *testing.T, sock string, exited chan error) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-exited:
			t.Fatalf("chowd exited during startup: %v", err)
		default:
		}
		if conn, err := net.Dial("unix", sock); err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("chowd socket never came up")
}

func postUnix(sock, path, body string) (int, error) {
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
				var d net.Dialer
				return d.DialContext(ctx, "unix", sock)
			},
		},
	}
	resp, err := client.Post("http://chowd"+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}
