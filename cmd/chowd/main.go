// chowd serves the chow88 compiler as a long-lived daemon: POST
// /compile, /compile-incremental and /run with JSON bodies, GET /metrics,
// /trace and /healthz, over TCP and/or a unix socket. See README "The
// compile daemon" for the request schema and the HTTP error-code table.
//
// The daemon is built for hostile neighborhoods: bounded worker pool and
// admission queue (429 + Retry-After under load), per-request deadlines,
// body and source-size limits, slow-client read timeouts, per-request
// panic containment, and LRU-bounded per-client incremental state. On
// SIGINT/SIGTERM it drains: in-flight and queued work completes under the
// drain deadline while new work gets 503.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chow88/internal/daemon"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", "127.0.0.1:8377", "TCP listen address (empty: no TCP listener)")
		socket       = flag.String("socket", "", "unix socket path to listen on (empty: no socket)")
		workers      = flag.Int("workers", 0, "compile worker pool size (0: default)")
		queue        = flag.Int("queue", 0, "admission queue depth (0: 2x workers)")
		stateDir     = flag.String("state-dir", "", "incremental statefile directory (empty: private temp dir)")
		maxClients   = flag.Int("max-clients", 0, "incremental statefile LRU cap (0: default)")
		timeout      = flag.Duration("timeout", 0, "default per-request deadline (0: 10s)")
		maxTimeout   = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0: 60s)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline")
		maxBody      = flag.Int64("max-body", 0, "request body byte limit (0: 1MiB)")
		maxLines     = flag.Int("max-lines", 0, "source line limit (0: default)")
		readTimeout  = flag.Duration("read-timeout", 0, "whole-request read timeout, slowloris defense (0: 15s)")
		readHeader   = flag.Duration("read-header-timeout", 0, "header read timeout (0: 5s)")
	)
	flag.Parse()
	if *addr == "" && *socket == "" {
		fmt.Fprintln(os.Stderr, "chowd: nothing to listen on (need -addr and/or -socket)")
		return 2
	}

	srv, err := daemon.NewServer(daemon.Config{
		Workers: *workers, QueueDepth: *queue,
		MaxBodyBytes: *maxBody, MaxSourceLines: *maxLines,
		DefaultTimeout: *timeout, MaxTimeout: *maxTimeout,
		ReadTimeout: *readTimeout, ReadHeaderTimeout: *readHeader,
		StateDir: *stateDir, MaxClients: *maxClients,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chowd: %v\n", err)
		return 1
	}

	errc := make(chan error, 2)
	serve := func(network, address string) error {
		ln, err := net.Listen(network, address)
		if err != nil {
			return err
		}
		fmt.Printf("chowd: listening on %s %s\n", network, ln.Addr())
		go func() { errc <- srv.Serve(ln) }()
		return nil
	}
	if *socket != "" {
		os.Remove(*socket) // a leftover socket file from a dead daemon
		if err := serve("unix", *socket); err != nil {
			fmt.Fprintf(os.Stderr, "chowd: %v\n", err)
			return 1
		}
		defer os.Remove(*socket)
	}
	if *addr != "" {
		if err := serve("tcp", *addr); err != nil {
			fmt.Fprintf(os.Stderr, "chowd: %v\n", err)
			return 1
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("chowd: %v, draining (deadline %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "chowd: shutdown: %v\n", err)
			return 1
		}
		fmt.Println("chowd: drained clean")
		return 0
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "chowd: serve: %v\n", err)
		return 1
	}
}
