// chowload generates load against a chowd daemon: a healthy mixed
// compile/run/incremental workload whose /run answers are verified against
// the reference interpreter, plus optional abusive traffic (slowloris
// connections, oversized bodies). It prints a summary — req/s, p50/p99
// latency, status histogram, healthy-5xx and oracle-mismatch counts — or
// the same as JSON with -json, which the e2e gate parses.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"chow88/internal/loadgen"
)

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8377", "daemon base URL")
		socket    = flag.String("socket", "", "dial this unix socket instead of TCP")
		clients   = flag.Int("clients", 4, "concurrent healthy clients")
		requests  = flag.Int("n", 25, "requests per client")
		timeoutMS = flag.Int("timeout-ms", 0, "per-request timeout_ms field (0: server default)")
		slow      = flag.Int("slowloris", 0, "slowloris connections to open alongside")
		slowHold  = flag.Duration("slowloris-hold", 3*time.Second, "how long each slowloris connection drips")
		oversized = flag.Int("oversized", 0, "oversized POSTs to send alongside")
		jsonOut   = flag.Bool("json", false, "print the summary as JSON")
	)
	flag.Parse()

	sum, err := loadgen.Run(loadgen.Options{
		BaseURL: *url, SocketPath: *socket,
		Clients: *clients, Requests: *requests, TimeoutMS: *timeoutMS,
		Slowloris: *slow, SlowlorisHold: *slowHold, Oversized: *oversized,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chowload: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
	} else {
		fmt.Print(sum.String())
	}
	if sum.Healthy5xx > 0 || sum.OracleMismatches > 0 {
		os.Exit(1)
	}
}
