// Command pixie compiles and executes a CW program, reporting the
// instruction-level trace statistics the paper's measurements are built
// from: executed cycles (exclusive of cache effects), instruction and call
// counts, and loads/stores classified into scalar, spill, save/restore and
// aggregate traffic.
//
// Usage:
//
//	pixie [-O3] [-shrinkwrap=false] [-regs cfg] file.cw
//
// With -compare, the program runs under all six measurement modes and a
// side-by-side summary is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"chow88"
	"chow88/internal/core"
	"chow88/internal/mach"
	"chow88/internal/mcode"
	"chow88/internal/pixie"
)

func main() {
	o3 := flag.Bool("O3", false, "inter-procedural allocation")
	sw := flag.Bool("shrinkwrap", true, "shrink-wrap saves/restores")
	regs := flag.String("regs", "full", "register configuration: full, caller7, callee7")
	compare := flag.Bool("compare", false, "run under all six measurement modes")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pixie [flags] file.cw")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *compare {
		modes := []core.Mode{
			chow88.ModeBase(), chow88.ModeA(), chow88.ModeB(),
			chow88.ModeC(), chow88.ModeD(), chow88.ModeE(),
		}
		fmt.Printf("%-14s %12s %10s %10s %10s %8s\n",
			"mode", "cycles", "scalar l+s", "save/rest", "aggregate", "calls")
		for _, m := range modes {
			prog, err := chow88.Compile(string(src), m)
			if err != nil {
				fatal(fmt.Errorf("[%s] %w", m.Name, err))
			}
			res, err := prog.Run()
			if err != nil {
				fatal(fmt.Errorf("[%s] %w", m.Name, err))
			}
			st := res.Stats
			agg := st.LoadsByClass[mcode.ClassAggregate] + st.StoresByClass[mcode.ClassAggregate]
			fmt.Printf("%-14s %12d %10d %10d %10d %8d\n",
				m.Name, st.Cycles, st.ScalarLS(), st.SaveRestoreLS(), agg, st.Calls)
		}
		return
	}

	mode := chow88.ModeBase()
	if *o3 {
		mode = chow88.ModeC()
	}
	mode.ShrinkWrap = *sw
	switch *regs {
	case "full":
	case "caller7":
		mode.Config = mach.CallerOnly7()
	case "callee7":
		mode.Config = mach.CalleeOnly7()
	default:
		fatal(fmt.Errorf("unknown register configuration %q", *regs))
	}
	prog, err := chow88.Compile(string(src), mode)
	if err != nil {
		fatal(err)
	}
	res, err := prog.Run()
	if err != nil {
		fatal(err)
	}
	pixie.PrintRun(os.Stdout, os.Stderr, "", res.Output, &res.Stats)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pixie:", err)
	os.Exit(1)
}
