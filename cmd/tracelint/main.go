// Command tracelint validates a Chrome trace_event JSON file of the kind
// chowcc -trace emits: either the JSON Object Format ({"traceEvents": [...]})
// or a bare event array. It checks that every event has a name and a phase,
// that complete ("X") events carry a duration, and that timestamps are
// non-negative. Exit status 1 means the file would not load cleanly in
// Perfetto / chrome://tracing.
//
// Usage:
//
//	tracelint trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	TS   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
	PID  int      `json:"pid"`
	TID  int      `json:"tid"`
}

type objectFormat struct {
	TraceEvents *[]event `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracelint trace.json")
		os.Exit(2)
	}
	b, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	events, err := parse(b)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", os.Args[1], err))
	}
	spans := 0
	for i, e := range events {
		if err := check(e); err != nil {
			fatal(fmt.Errorf("%s: event %d: %w", os.Args[1], i, err))
		}
		if e.Ph == "X" {
			spans++
		}
	}
	fmt.Printf("%s: ok, %d events (%d spans)\n", os.Args[1], len(events), spans)
}

// parse accepts both trace_event containers: the object format and the
// legacy bare array.
func parse(b []byte) ([]event, error) {
	var obj objectFormat
	if err := json.Unmarshal(b, &obj); err == nil && obj.TraceEvents != nil {
		return *obj.TraceEvents, nil
	}
	var arr []event
	if err := json.Unmarshal(b, &arr); err != nil {
		return nil, fmt.Errorf("neither a trace object nor an event array: %w", err)
	}
	return arr, nil
}

func check(e event) error {
	if e.Name == "" {
		return fmt.Errorf("missing name")
	}
	if e.Ph == "" {
		return fmt.Errorf("%q: missing phase", e.Name)
	}
	if e.TS != nil && *e.TS < 0 {
		return fmt.Errorf("%q: negative timestamp %v", e.Name, *e.TS)
	}
	switch e.Ph {
	case "X":
		if e.TS == nil {
			return fmt.Errorf("%q: complete event without ts", e.Name)
		}
		if e.Dur == nil || *e.Dur < 0 {
			return fmt.Errorf("%q: complete event without a valid dur", e.Name)
		}
	case "M":
		// Metadata events carry no timing.
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracelint:", err)
	os.Exit(1)
}
