// Command tracelint validates a Chrome trace_event JSON file of the kind
// chowcc -trace emits: either the JSON Object Format ({"traceEvents": [...]})
// or a bare event array. It checks that every event has a name and a phase,
// that complete ("X") events carry a duration, and that timestamps are
// non-negative. Exit status 1 means the file would not load cleanly in
// Perfetto / chrome://tracing.
//
// Decision-provenance events (category "explain", emitted when -explain and
// -trace are combined) get three additional checks: each must carry an
// args.phase naming the pipeline phase that owns it, each must fall inside
// some same-thread span of that phase's category (an explain event floating
// outside its owning plan/compile/inline span renders misleadingly), and
// within one thread the explain stream's timestamps must be monotonically
// non-decreasing in file order (the journal's retention order is the order
// decisions were taken).
//
// Usage:
//
//	tracelint trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	TS   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type objectFormat struct {
	TraceEvents *[]event `json:"traceEvents"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracelint trace.json")
		os.Exit(2)
	}
	b, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	events, spans, explains, err := lint(b)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", os.Args[1], err))
	}
	fmt.Printf("%s: ok, %d events (%d spans, %d explain)\n", os.Args[1], events, spans, explains)
}

// lint parses and validates a trace, returning the event, span and
// explain-event counts. The first violation aborts with an error naming the
// offending event's index in file order.
func lint(b []byte) (events, spans, explains int, err error) {
	evs, err := parse(b)
	if err != nil {
		return 0, 0, 0, err
	}
	for i, e := range evs {
		if err := check(e); err != nil {
			return 0, 0, 0, fmt.Errorf("event %d: %w", i, err)
		}
		if e.Ph == "X" {
			spans++
		}
		if e.Cat == "explain" {
			explains++
		}
	}
	if err := checkExplain(evs); err != nil {
		return 0, 0, 0, err
	}
	return len(evs), spans, explains, nil
}

// parse accepts both trace_event containers: the object format and the
// legacy bare array.
func parse(b []byte) ([]event, error) {
	var obj objectFormat
	if err := json.Unmarshal(b, &obj); err == nil && obj.TraceEvents != nil {
		return *obj.TraceEvents, nil
	}
	var arr []event
	if err := json.Unmarshal(b, &arr); err != nil {
		return nil, fmt.Errorf("neither a trace object nor an event array: %w", err)
	}
	return arr, nil
}

func check(e event) error {
	if e.Name == "" {
		return fmt.Errorf("missing name")
	}
	if e.Ph == "" {
		return fmt.Errorf("%q: missing phase", e.Name)
	}
	if e.TS != nil && *e.TS < 0 {
		return fmt.Errorf("%q: negative timestamp %v", e.Name, *e.TS)
	}
	switch e.Ph {
	case "X":
		if e.TS == nil {
			return fmt.Errorf("%q: complete event without ts", e.Name)
		}
		if e.Dur == nil || *e.Dur < 0 {
			return fmt.Errorf("%q: complete event without a valid dur", e.Name)
		}
	case "M":
		// Metadata events carry no timing.
	}
	return nil
}

// eps absorbs the rounding of timestamps to trace microseconds: an explain
// event cut at the very edge of its owning span may land a hair outside it.
const eps = 0.01

// checkExplain runs the decision-provenance checks. First pass gathers the
// candidate owning spans (non-explain complete events, keyed by thread);
// second pass requires every explain event to carry args.phase, to nest
// inside a same-thread span of that category, and to keep the per-thread
// explain stream monotonic in file order.
func checkExplain(evs []event) error {
	type span struct {
		cat        string
		start, end float64
	}
	spans := map[int][]span{}
	for _, e := range evs {
		if e.Ph == "X" && e.Cat != "explain" && e.TS != nil && e.Dur != nil {
			spans[e.TID] = append(spans[e.TID], span{e.Cat, *e.TS, *e.TS + *e.Dur})
		}
	}
	lastTS := map[int]float64{}
	for i, e := range evs {
		if e.Cat != "explain" {
			continue
		}
		phase, _ := e.Args["phase"].(string)
		if phase == "" {
			return fmt.Errorf("event %d: explain event %q: missing args.phase", i, e.Name)
		}
		if e.TS == nil {
			return fmt.Errorf("event %d: explain event %q: missing ts", i, e.Name)
		}
		ts := *e.TS
		if last, seen := lastTS[e.TID]; seen && ts < last {
			return fmt.Errorf("event %d: explain event %q: ts %v precedes the previous explain event on tid %d (%v)",
				i, e.Name, ts, e.TID, last)
		}
		lastTS[e.TID] = ts
		contained := false
		for _, s := range spans[e.TID] {
			if s.cat == phase && ts >= s.start-eps && ts <= s.end+eps {
				contained = true
				break
			}
		}
		if !contained {
			return fmt.Errorf("event %d: explain event %q (phase %s, ts %v) is outside every %s span on tid %d",
				i, e.Name, phase, ts, phase, e.TID)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracelint:", err)
	os.Exit(1)
}
