package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"chow88"
	"chow88/internal/explain"
	"chow88/internal/obs"
)

const src = `
func helper(a int, b int) int {
    if (a > b) { return helper(b, a); }
    return a + b;
}
func main() { print(helper(3, 4)); }
`

// realTrace compiles a program with tracing and the journal active and
// returns the serialized trace, which must contain explain events.
func realTrace(t *testing.T) []byte {
	t.Helper()
	obs.Begin(obs.Options{Trace: true})
	explain.Begin()
	defer explain.End()
	if _, err := chow88.Compile(src, chow88.ModeC()); err != nil {
		obs.End()
		t.Fatalf("compile: %v", err)
	}
	var buf bytes.Buffer
	if err := obs.End().WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLintRealTrace(t *testing.T) {
	b := realTrace(t)
	events, spans, explains, err := lint(b)
	if err != nil {
		t.Fatalf("real trace fails lint: %v", err)
	}
	if events == 0 || spans == 0 {
		t.Errorf("empty trace: %d events, %d spans", events, spans)
	}
	if explains == 0 {
		t.Errorf("compile with an active journal produced no explain events")
	}
}

// corrupt loads the trace, applies f to its events, and re-serializes.
func corrupt(t *testing.T, b []byte, f func([]map[string]any) []map[string]any) []byte {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(doc["traceEvents"], &evs); err != nil {
		t.Fatal(err)
	}
	evs = f(evs)
	out, err := json.Marshal(evs)
	if err != nil {
		t.Fatal(err)
	}
	doc["traceEvents"] = out
	full, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

// firstExplain returns the index of the first explain event.
func firstExplain(t *testing.T, evs []map[string]any) int {
	t.Helper()
	for i, e := range evs {
		if e["cat"] == "explain" {
			return i
		}
	}
	t.Fatal("no explain event in trace")
	return -1
}

func TestLintRejectsCorruptedTraces(t *testing.T) {
	base := realTrace(t)
	cases := []struct {
		name    string
		mutate  func([]map[string]any) []map[string]any
		wantErr string
	}{
		{
			"explain event outside every owning span",
			func(evs []map[string]any) []map[string]any {
				evs[firstExplain(t, evs)]["ts"] = 1e12
				return evs
			},
			"outside every",
		},
		{
			"missing args.phase",
			func(evs []map[string]any) []map[string]any {
				evs[firstExplain(t, evs)]["args"] = map[string]any{"func": "helper"}
				return evs
			},
			"missing args.phase",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := corrupt(t, base, c.mutate)
			_, _, _, err := lint(b)
			if err == nil {
				t.Fatalf("corrupted trace (%s) passed lint", c.name)
			}
			if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// Two explain events on one thread with timestamps out of file order must
// be rejected even though each sits inside its owning span.
func TestLintRejectsNonMonotonicExplain(t *testing.T) {
	trace := `[
	 {"name":"PlanModule","ph":"X","cat":"plan","ts":0,"dur":100,"pid":0,"tid":0},
	 {"name":"classify f","ph":"X","cat":"explain","ts":50,"dur":0.001,"pid":0,"tid":0,"args":{"phase":"plan","func":"f"}},
	 {"name":"classify g","ph":"X","cat":"explain","ts":40,"dur":0.001,"pid":0,"tid":0,"args":{"phase":"plan","func":"g"}}
	]`
	_, _, _, err := lint([]byte(trace))
	if err == nil {
		t.Fatal("non-monotonic explain stream passed lint")
	}
	if !strings.Contains(err.Error(), "precedes") {
		t.Errorf("error %q does not mention the ordering violation", err)
	}
}

func TestLintStillAcceptsBareArray(t *testing.T) {
	arr := `[{"name":"x","ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]`
	if _, _, _, err := lint([]byte(arr)); err != nil {
		t.Errorf("bare event array rejected: %v", err)
	}
}
