// Command experiments regenerates the paper's evaluation: Table 1,
// Table 2, the Figure 1–4 demonstrations, and the extensions (profile
// feedback, inlining, the calling-convention sweep and per-program tuner).
//
// Usage:
//
//	experiments [-table1] [-table2] [-fig1] [-fig2] [-fig3] [-fig4]
//	            [-height] [-profile] [-inline] [-sweep] [-tune] [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"chow88/internal/experiments"
	"chow88/internal/obs"
)

func main() {
	t1 := flag.Bool("table1", false, "reproduce Table 1 (shrink-wrap and IPRA effects)")
	t2 := flag.Bool("table2", false, "reproduce Table 2 (7 caller-saved vs 7 callee-saved)")
	f1 := flag.Bool("fig1", false, "demonstrate Figure 1 (call-tree register reuse)")
	f2 := flag.Bool("fig2", false, "demonstrate Figure 2 (save placement vs CFG form)")
	f3 := flag.Bool("fig3", false, "demonstrate Figure 3 (per-path shrink-wrap effect)")
	f4 := flag.Bool("fig4", false, "demonstrate Figure 4 (save placement vs call frequency)")
	height := flag.Bool("height", false, "run the call-graph-height ablation (D vs E crossover)")
	profile := flag.Bool("profile", false, "measure profile feedback vs static frequency estimates")
	inl := flag.Bool("inline", false, "measure profile-guided inlining vs IPRA with pixie attribution")
	sweep := flag.Bool("sweep", false, "sweep sampled calling conventions over the suite (chowtune has the full controls)")
	tune := flag.Bool("tune", false, "profile-guided per-program convention selection over a sampled candidate set")
	all := flag.Bool("all", false, "run everything")
	stats := flag.Bool("stats", false, "collect and print per-measurement compile/run metrics")
	flag.Parse()

	if !(*t1 || *t2 || *f1 || *f2 || *f3 || *f4 || *height || *profile || *inl || *sweep || *tune) {
		*all = true
	}
	if *stats {
		obs.Begin(obs.Options{})
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *all || *t1 {
		rows, err := experiments.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable(
			"Table 1. Effects of applying the techniques on the 13-program suite",
			rows, experiments.Keys1))
		fmt.Println("Key: A = -O2 + shrink-wrap; B = -O3; C = -O3 + shrink-wrap")
		fmt.Println()
		if s := experiments.FormatObs("Table 1 compile/run metrics", rows, experiments.Keys1); s != "" {
			fmt.Println(s)
		}
	}
	if *all || *t2 {
		rows, err := experiments.Table2()
		if err != nil {
			fail(err)
		}
		fmt.Println(experiments.FormatTable(
			"Table 2. Effects of the two register classes (mode C, 7 registers)",
			rows, experiments.Keys2))
		fmt.Println("Key: D = 7 caller-saved only; E = 7 callee-saved only")
		fmt.Println()
		if s := experiments.FormatObs("Table 2 compile/run metrics", rows, experiments.Keys2); s != "" {
			fmt.Println(s)
		}
	}
	type figFn struct {
		on bool
		fn func() (string, error)
	}
	for _, fg := range []figFn{
		{*all || *f1, experiments.Fig1},
		{*all || *f2, experiments.Fig2},
		{*all || *f3, experiments.Fig3},
		{*all || *f4, experiments.Fig4},
		{*all || *height, experiments.HeightSweep},
		{*all || *profile, experiments.ProfileFeedback},
		{*all || *inl, experiments.InlineVsIPRA},
		{*all || *sweep, func() (string, error) {
			wl, err := experiments.SweepWorkload(4)
			if err != nil {
				return "", err
			}
			rep, err := experiments.Sweep(experiments.SampleConventions(24), wl, 0)
			if err != nil {
				return "", err
			}
			return experiments.FormatSweep(rep), nil
		}},
		{*all || *tune, func() (string, error) {
			rows, err := experiments.Tune(experiments.SampleConventions(16), 0)
			if err != nil {
				return "", err
			}
			return experiments.FormatTune(rows), nil
		}},
	} {
		if !fg.on {
			continue
		}
		s, err := fg.fn()
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}
}
