package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chow88"
	"chow88/internal/explain"
	"chow88/internal/obs"
	"chow88/internal/pixie"
)

// compileDoc compiles src under mode with the journal active and returns a
// chowcc -json-shaped document.
func compileDoc(t *testing.T, src string, mode chow88.Mode) []byte {
	t.Helper()
	obs.Begin(obs.Options{})
	explain.Begin()
	defer explain.End()
	defer obs.End()
	prog, err := chow88.Compile(src, mode)
	if err != nil {
		t.Fatalf("compile %s: %v", mode.Name, err)
	}
	res, err := prog.Run()
	if err != nil {
		t.Fatalf("run %s: %v", mode.Name, err)
	}
	doc := struct {
		Mode    string
		Stats   pixie.Stats
		Compile *obs.CompileReport
	}{mode.Name, res.Stats, prog.Report}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

const src = `
func leaf(a int, b int) int {
    var s int;
    var i int;
    for (i = 0; i < 8; i = i + 1) { s = s + a * b + i; }
    return s;
}
func mid(x int) int {
    var acc int;
    var i int;
    for (i = 0; i < 6; i = i + 1) { acc = acc + leaf(x, i); }
    return acc;
}
func main() {
    var t int;
    var i int;
    for (i = 0; i < 5; i = i + 1) { t = t + mid(i); }
    print(t);
}
`

func writeDocs(t *testing.T) (aPath, bPath string) {
	t.Helper()
	dir := t.TempDir()
	aPath = filepath.Join(dir, "b.json")
	bPath = filepath.Join(dir, "c.json")
	if err := os.WriteFile(aPath, compileDoc(t, src, chow88.ModeB()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bPath, compileDoc(t, src, chow88.ModeC()), 0o644); err != nil {
		t.Fatal(err)
	}
	return aPath, bPath
}

func TestDiffChowccDocs(t *testing.T) {
	aPath, bPath := writeDocs(t)
	var out strings.Builder
	if err := run(aPath, bPath, false, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "predicted save/restore delta:") {
		t.Errorf("report missing prediction line:\n%s", got)
	}
	if !strings.Contains(got, "measured  save/restore delta:") {
		t.Errorf("both docs carry stats but report has no measured line:\n%s", got)
	}
	if !strings.Contains(got, "% attributed") {
		t.Errorf("report missing attribution:\n%s", got)
	}
}

func TestDiffJSONOutput(t *testing.T) {
	aPath, bPath := writeDocs(t)
	var out strings.Builder
	if err := run(aPath, bPath, true, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		A            string  `json:"a"`
		B            string  `json:"b"`
		PredictedOps float64 `json:"predicted_save_restore_ops"`
		Measured     *float64
		Attribution  *float64 `json:"attribution_percent"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.A == "" || rep.B == "" {
		t.Errorf("missing input labels: %+v", rep)
	}
	if rep.Attribution == nil {
		t.Errorf("missing attribution despite stats on both inputs")
	}
}

// A bare artifact (the Explain field alone) must also load, and without
// stats the report carries no measured line.
func TestDiffBareArtifacts(t *testing.T) {
	aPath, bPath := writeDocs(t)
	dir := t.TempDir()
	for i, p := range []*string{&aPath, &bPath} {
		b, err := os.ReadFile(*p)
		if err != nil {
			t.Fatal(err)
		}
		var d struct {
			Compile struct {
				Explain json.RawMessage
			}
		}
		if err := json.Unmarshal(b, &d); err != nil {
			t.Fatal(err)
		}
		bare := filepath.Join(dir, []string{"a", "b"}[i]+".json")
		if err := os.WriteFile(bare, d.Compile.Explain, 0o644); err != nil {
			t.Fatal(err)
		}
		*p = bare
	}
	var out strings.Builder
	if err := run(aPath, bPath, false, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "predicted save/restore delta:") {
		t.Errorf("report missing prediction line:\n%s", got)
	}
	if strings.Contains(got, "measured") {
		t.Errorf("bare artifacts carry no stats, yet a measured line appeared:\n%s", got)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	noJournal := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(noJournal, []byte(`{"Mode":"x","Stats":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(noJournal); err == nil {
		t.Error("document without a journal loaded without error")
	}
	if _, err := load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded without error")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(bad); err == nil {
		t.Error("malformed JSON loaded without error")
	}
}
