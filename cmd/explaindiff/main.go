// Command explaindiff attributes the save/restore (and hence linkage-cycle)
// difference between two compiles to the specific allocation decisions that
// changed. Its inputs are two decision-provenance journals: either whole
// `chowcc -explain -json` documents (in which case each run's pixie stats
// supply a measured delta to attribute) or bare explain artifacts (the
// "Explain" field alone), in any combination.
//
// For every save/restore site that appears in one journal but not the other
// — or appears in both with a different expected execution count — the tool
// prints the site, its cause (shrink-wrap equation, entry/exit default,
// around-call, return address) and the frequency-weighted operation delta,
// followed by the changed non-placement decisions ("because:" lines — a
// classification flip, a §6 wrap reversal, a renegotiated parameter, an
// inliner verdict) that explain it. The per-site deltas sum to a predicted
// save/restore cycle delta; when both inputs carry run statistics the
// prediction is compared against the measured SaveRestoreLS difference and
// the attributed percentage reported.
//
// Usage:
//
//	explaindiff [-json] a.json b.json
//
// The report reads as "what changed going from a to b". Exit status 1 means
// an input could not be read or carried no journal; 2 is a usage error.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"chow88/internal/explain"
	"chow88/internal/pixie"
)

func main() {
	jsonOut := false
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-json" {
		jsonOut = true
		args = args[1:]
	}
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: explaindiff [-json] a.json b.json")
		os.Exit(2)
	}
	if err := run(args[0], args[1], jsonOut, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "explaindiff:", err)
		os.Exit(1)
	}
}

// input is one loaded journal plus the run stats that came with it.
type input struct {
	name  string
	art   *explain.Artifact
	stats *pixie.Stats
}

// doc matches the two accepted shapes at once: a chowcc -json document
// (Mode/Stats/Compile.Explain) and a bare artifact (procs/module). Pointer
// fields distinguish "absent" from "empty".
type doc struct {
	Mode    string       `json:"Mode"`
	Stats   *pixie.Stats `json:"Stats"`
	Compile *struct {
		Explain *explain.Artifact `json:"Explain"`
	} `json:"Compile"`
	Procs  *[]explain.ProcJournal `json:"procs"`
	Module []explain.Decision     `json:"module"`
}

func load(path string) (*input, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	in := &input{name: filepath.Base(path), stats: d.Stats}
	if d.Mode != "" {
		in.name = fmt.Sprintf("%s (%s)", filepath.Base(path), d.Mode)
	}
	switch {
	case d.Compile != nil && d.Compile.Explain != nil:
		in.art = d.Compile.Explain
	case d.Procs != nil:
		in.art = &explain.Artifact{Procs: *d.Procs, Module: d.Module}
	default:
		return nil, fmt.Errorf("%s: no explain journal (compile with chowcc -explain -json)", path)
	}
	return in, nil
}

func run(aPath, bPath string, jsonOut bool, out io.Writer) error {
	a, err := load(aPath)
	if err != nil {
		return err
	}
	b, err := load(bPath)
	if err != nil {
		return err
	}
	d := explain.DiffArtifacts(a.art, b.art)
	var measured float64
	haveMeasured := a.stats != nil && b.stats != nil
	if haveMeasured {
		measured = float64(b.stats.SaveRestoreLS() - a.stats.SaveRestoreLS())
	}
	if jsonOut {
		rep := struct {
			A string `json:"a"`
			B string `json:"b"`
			*explain.Diff
			Measured    *float64 `json:"measured_save_restore_delta,omitempty"`
			Attribution *float64 `json:"attribution_percent,omitempty"`
		}{A: a.name, B: b.name, Diff: d}
		if haveMeasured {
			att := d.Attribution(measured)
			rep.Measured, rep.Attribution = &measured, &att
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	_, err = fmt.Fprint(out, d.Format(a.name, b.name, measured, haveMeasured))
	return err
}
