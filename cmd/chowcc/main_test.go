package main

import (
	"errors"
	"fmt"
	"testing"

	"chow88/internal/codegen"
	"chow88/internal/front"
	"chow88/internal/pipeline"
	"chow88/internal/sim"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{&front.StageError{Stage: "parse", Err: errors.New("x")}, exitParse},
		{&front.StageError{Stage: "sema", Err: errors.New("x")}, exitSema},
		{&front.StageError{Stage: "lower", Err: errors.New("x")}, exitInternal},
		{&front.StageError{Stage: "parse", Recovered: true, Err: errors.New("x")}, exitInternal},
		{&pipeline.ValidationError{Phase: "validate"}, exitValidate},
		{&codegen.FuncError{Func: "f", Err: errors.New("x")}, exitCodegen},
		{&sim.Trap{Msg: "x", PC: 1}, exitTrap},
		{fmt.Errorf("pc 3: %w", sim.ErrLimit), exitBudget},
		{fmt.Errorf("pc 3: %w", sim.ErrDeadline), exitDeadline},
		{sim.ValidateEngine("turbo"), exitBadEngine},
		{errors.New("anything else"), exitInternal},
		// Wrapped variants classify the same way.
		{fmt.Errorf("outer: %w", &front.StageError{Stage: "parse", Err: errors.New("x")}), exitParse},
	}
	for _, c := range cases {
		if code, _ := classify(c.err); code != c.code {
			t.Errorf("classify(%v) = %d, want %d", c.err, code, c.code)
		}
	}
}
