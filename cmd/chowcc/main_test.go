package main

import (
	"errors"
	"fmt"
	"testing"

	"chow88/internal/codegen"
	"chow88/internal/front"
	"chow88/internal/inline"
	"chow88/internal/pipeline"
	"chow88/internal/sim"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{&front.StageError{Stage: "parse", Err: errors.New("x")}, exitParse},
		{&front.StageError{Stage: "sema", Err: errors.New("x")}, exitSema},
		{&front.StageError{Stage: "lower", Err: errors.New("x")}, exitInternal},
		{&front.StageError{Stage: "parse", Recovered: true, Err: errors.New("x")}, exitInternal},
		{&pipeline.ValidationError{Phase: "validate"}, exitValidate},
		{&codegen.FuncError{Func: "f", Err: errors.New("x")}, exitCodegen},
		{&sim.Trap{Msg: "x", PC: 1}, exitTrap},
		{fmt.Errorf("pc 3: %w", sim.ErrLimit), exitBudget},
		{fmt.Errorf("pc 3: %w", sim.ErrDeadline), exitDeadline},
		{sim.ValidateEngine("turbo"), exitBadEngine},
		{badBudgetErr("bogus"), exitBadBudget},
		{badBudgetErr("0"), exitBadBudget},
		{badBudgetErr("-3"), exitBadBudget},
		{errors.New("anything else"), exitInternal},
		// Wrapped variants classify the same way.
		{fmt.Errorf("outer: %w", &front.StageError{Stage: "parse", Err: errors.New("x")}), exitParse},
	}
	for _, c := range cases {
		if code, _ := classify(c.err); code != c.code {
			t.Errorf("classify(%v) = %d, want %d", c.err, code, c.code)
		}
	}
}

// badBudgetErr produces the error a bad -inline=budget value yields.
func badBudgetErr(s string) error {
	_, err := inline.ParseBudget(s)
	return err
}

func TestInlineFlag(t *testing.T) {
	cases := []struct {
		in  string
		set bool
		raw string
	}{
		{"true", true, "true"}, // bare -inline
		{"75", true, "75"},
		{"false", false, ""}, // -inline=false disables
	}
	for _, c := range cases {
		var v inlineFlag
		if err := v.Set(c.in); err != nil {
			t.Fatalf("Set(%q): %v", c.in, err)
		}
		if v.set != c.set || v.raw != c.raw {
			t.Errorf("Set(%q) = {set:%v raw:%q}, want {set:%v raw:%q}", c.in, v.set, v.raw, c.set, c.raw)
		}
	}
	if !(&inlineFlag{}).IsBoolFlag() {
		t.Error("inlineFlag must be bool-like so bare -inline parses")
	}
}
