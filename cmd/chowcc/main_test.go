package main

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"chow88"
	"chow88/internal/codegen"
	"chow88/internal/front"
	"chow88/internal/inline"
	"chow88/internal/mach"
	"chow88/internal/pipeline"
	"chow88/internal/sim"
)

// TestClassify pins chowcc's exit codes to the shared error classifier
// (chow88.ClassifyError, also the daemon's HTTP mapping source).
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{&front.StageError{Stage: "parse", Err: errors.New("x")}, chow88.ExitParse},
		{&front.StageError{Stage: "sema", Err: errors.New("x")}, chow88.ExitSema},
		{&front.StageError{Stage: "lower", Err: errors.New("x")}, chow88.ExitInternal},
		{&front.StageError{Stage: "parse", Recovered: true, Err: errors.New("x")}, chow88.ExitInternal},
		{&pipeline.ValidationError{Phase: "validate"}, chow88.ExitValidate},
		{&codegen.FuncError{Func: "f", Err: errors.New("x")}, chow88.ExitCodegen},
		{&sim.Trap{Msg: "x", PC: 1}, chow88.ExitTrap},
		{fmt.Errorf("pc 3: %w", sim.ErrLimit), chow88.ExitBudget},
		{fmt.Errorf("pc 3: %w", sim.ErrDeadline), chow88.ExitDeadline},
		{fmt.Errorf("%w: %w", pipeline.ErrCanceled, context.DeadlineExceeded), chow88.ExitDeadline},
		{sim.ValidateEngine("turbo"), chow88.ExitBadEngine},
		{badBudgetErr("bogus"), chow88.ExitBadBudget},
		{badBudgetErr("0"), chow88.ExitBadBudget},
		{badBudgetErr("-3"), chow88.ExitBadBudget},
		{badConvErr("caller=t0;callee=t0"), chow88.ExitBadConv},
		{badConvErr("caller=ra"), chow88.ExitBadConv},
		{badConvErr("nonsense"), chow88.ExitBadConv},
		{errors.New("anything else"), chow88.ExitInternal},
		// Wrapped variants classify the same way.
		{fmt.Errorf("outer: %w", &front.StageError{Stage: "parse", Err: errors.New("x")}), chow88.ExitParse},
	}
	for _, c := range cases {
		if code, _ := chow88.ClassifyError(c.err); code != c.code {
			t.Errorf("ClassifyError(%v) = %d, want %d", c.err, code, c.code)
		}
	}
}

// badBudgetErr produces the error a bad -inline=budget value yields.
func badBudgetErr(s string) error {
	_, err := inline.ParseBudget(s)
	return err
}

// badConvErr produces the error a bad -conv=spec value yields.
func badConvErr(s string) error {
	_, err := mach.ParseConvention(s)
	return err
}

func TestInlineFlag(t *testing.T) {
	cases := []struct {
		in  string
		set bool
		raw string
	}{
		{"true", true, "true"}, // bare -inline
		{"75", true, "75"},
		{"false", false, ""}, // -inline=false disables
	}
	for _, c := range cases {
		var v inlineFlag
		if err := v.Set(c.in); err != nil {
			t.Fatalf("Set(%q): %v", c.in, err)
		}
		if v.set != c.set || v.raw != c.raw {
			t.Errorf("Set(%q) = {set:%v raw:%q}, want {set:%v raw:%q}", c.in, v.set, v.raw, c.set, c.raw)
		}
	}
	if !(&inlineFlag{}).IsBoolFlag() {
		t.Error("inlineFlag must be bool-like so bare -inline parses")
	}
}
