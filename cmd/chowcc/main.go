// Command chowcc compiles a CW source file, mirroring the paper's compiler
// driver: -O2 selects intra-procedural priority-based coloring, -O3 adds
// one-pass inter-procedural allocation, and -shrinkwrap toggles optimized
// save/restore placement. The result can be disassembled, executed, or
// inspected (call graph, allocation plan, per-function summaries).
//
// Usage:
//
//	chowcc [flags] file.cw
//
// Flags:
//
//	-O2 / -O3        optimization level (default -O2)
//	-shrinkwrap      enable shrink-wrapping (default true, as under -O2/-O3)
//	-regs full|caller7|callee7
//	-conv=<spec>     compile under an explicit register convention, e.g.
//	                 "caller=v1,a0-a3,t0-t9;callee=s0-s8;params=a0-a3"
//	                 (overrides -regs; incoherent specs are rejected with
//	                 their named reason and exit code 12)
//	-run             execute and print the program output and trace stats
//	-engine=native   execution tier for -run: native (closure-threaded, the
//	                 default), fast (predecoded block dispatch) or reference
//	                 (per-instruction oracle); unknown names are rejected
//	-timeout=10s     wall-clock limit for -run (0 = none)
//	-S               print the disassembly
//	-ir              print the optimized IR
//	-plan            print the call graph, open/closed classification and
//	                 register summaries
//	-explain[=proc]  print the decision-provenance journal: every allocation
//	                 decision (classification, spills, §6 wrap choices,
//	                 linkage negotiation, save/restore placements, inlining
//	                 verdicts) with its cause; optionally filtered to one
//	                 procedure. With -json the journal attaches to the
//	                 compile report instead (field "Explain")
//	-open f,g        force the named procedures open (separate compilation)
//	-pgo             profile-guided build: a baseline training run attaches
//	                 measured block frequencies before the final compile
//	-inline[=budget] profile-guided procedure integration (implies -pgo);
//	                 budget is the code-growth allowance in percent of the
//	                 pre-inlining instruction count (default 50)
//	-incremental=f.state
//	                 reuse the previous build recorded in the statefile; only
//	                 the edit's summary-delta frontier is recompiled, and the
//	                 statefile is rewritten for the next run (created if
//	                 missing; corruption or mode changes fall back to a full
//	                 recompile)
//	-strict          fail on linkage-invariant violations instead of degrading
//	-validate=false  disable the linkage-invariant validator
//	-stats           print compile and run metrics tables on stderr
//	-trace=out.json  write a Chrome trace_event file (open in Perfetto)
//	-json            emit the run result as a JSON document on stdout
//
// Exit codes (each failure class is distinct, so scripts and the fuzz
// harness can triage without parsing messages):
//
//	0  success
//	1  internal error (lower/opt failure, recovered panic, I/O)
//	2  usage error
//	3  parse error
//	4  semantic error
//	5  linkage-invariant violation (compiling under -strict)
//	6  code-generation failure
//	7  machine trap at run time
//	8  instruction budget exceeded
//	9  wall-clock deadline exceeded (-timeout)
//	10 unknown -engine name
//	11 invalid -inline budget
//	12 invalid register convention (-conv)
//
// Every failure prints exactly one structured diagnostic line on stderr:
// "chowcc: <class>: <detail>".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"chow88"
	"chow88/internal/core"
	"chow88/internal/explain"
	"chow88/internal/inline"
	"chow88/internal/ir"
	"chow88/internal/mach"
	"chow88/internal/obs"
	"chow88/internal/pixie"
	"chow88/internal/sim"
)

// Exit codes, one per failure class (shared with the error classifier the
// chowd daemon maps onto HTTP statuses).
const (
	exitUsage = chow88.ExitUsage
)

// inlineFlag is the -inline[=budget] value: bool-like (bare -inline works)
// but also accepting a percentage (-inline=75). The raw text is validated
// after flag parsing with inline.ParseBudget so a bad budget is classified
// with its own exit code rather than flag package's generic usage error.
type inlineFlag struct {
	set bool
	raw string
}

func (v *inlineFlag) String() string   { return v.raw }
func (v *inlineFlag) IsBoolFlag() bool { return true }
func (v *inlineFlag) Set(s string) error {
	if s == "false" {
		v.set = false
		v.raw = ""
		return nil
	}
	v.set = true
	v.raw = s
	return nil
}

// explainFlag is the -explain[=proc] value: bool-like (bare -explain prints
// the whole journal) but also accepting a procedure name to filter to.
type explainFlag struct {
	set  bool
	proc string
}

func (v *explainFlag) String() string   { return v.proc }
func (v *explainFlag) IsBoolFlag() bool { return true }
func (v *explainFlag) Set(s string) error {
	if s == "false" {
		v.set = false
		v.proc = ""
		return nil
	}
	v.set = true
	if s != "true" {
		v.proc = s
	}
	return nil
}

func main() {
	o3 := flag.Bool("O3", false, "enable inter-procedural register allocation")
	o2 := flag.Bool("O2", true, "baseline global optimization (always on)")
	sw := flag.Bool("shrinkwrap", true, "enable shrink-wrapping of callee-saved saves/restores")
	regs := flag.String("regs", "full", "register configuration: full, caller7, callee7")
	conv := flag.String("conv", "", "explicit register convention spec (overrides -regs), e.g. caller=v1,a0-a3,t0-t9;callee=s0-s8;params=a0-a3")
	doRun := flag.Bool("run", false, "execute the program on the simulator")
	engine := flag.String("engine", "", "execution tier for -run: native (default), fast, reference")
	doAsm := flag.Bool("S", false, "print disassembly")
	doIR := flag.Bool("ir", false, "print optimized IR")
	doPlan := flag.Bool("plan", false, "print call graph and allocation plan")
	openList := flag.String("open", "", "comma-separated procedures to force open")
	pgo := flag.Bool("pgo", false, "profile-guided build (baseline training run attaches block frequencies)")
	var inlineOpt inlineFlag
	flag.Var(&inlineOpt, "inline", "profile-guided inlining, optionally with a code-growth budget percent (implies -pgo)")
	var explainOpt explainFlag
	flag.Var(&explainOpt, "explain", "print the decision-provenance journal, optionally filtered to one procedure")
	incrPath := flag.String("incremental", "", "statefile enabling incremental recompilation (created if missing)")
	strict := flag.Bool("strict", false, "fail on linkage-invariant violations instead of degrading")
	validate := flag.Bool("validate", true, "run the linkage-invariant validator after planning and codegen")
	timeout := flag.Duration("timeout", 0, "wall-clock limit for -run (0 = none)")
	stats := flag.Bool("stats", false, "print compile and run metrics tables on stderr")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file to the given path")
	jsonOut := flag.Bool("json", false, "emit the run result as JSON on stdout (implies -run)")
	flag.Parse()

	if *stats || *jsonOut || *traceOut != "" {
		obs.Begin(obs.Options{Trace: *traceOut != ""})
	}
	if explainOpt.set {
		explain.Begin()
	}

	if err := sim.ValidateEngine(*engine); err != nil {
		fatal(err)
	}

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: chowcc [flags] file.cw [more.cw ...]")
		flag.Usage()
		os.Exit(2)
	}
	// Multiple files are separate program units linked together (§7 of the
	// paper); extern declarations resolve against the other units.
	var units []string
	for _, name := range flag.Args() {
		b, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		units = append(units, string(b))
	}

	mode := core.ModeBase()
	if *o3 {
		mode = core.ModeC()
	}
	_ = *o2
	mode.ShrinkWrap = *sw
	regsName := *regs
	switch *regs {
	case "full":
	case "caller7":
		mode.Config = mach.CallerOnly7()
	case "callee7":
		mode.Config = mach.CalleeOnly7()
	default:
		fatal(fmt.Errorf("unknown register configuration %q", *regs))
	}
	if *conv != "" {
		cfg, err := mach.ParseConvention(*conv)
		if err != nil {
			fatal(err)
		}
		mode.Config = cfg
		regsName = cfg.Name
	}
	if *openList != "" {
		mode.ForceOpen = strings.Split(*openList, ",")
	}
	mode.Validate = *validate
	mode.Strict = *strict
	mode.Name = fmt.Sprintf("O%d sw=%v regs=%s", map[bool]int{false: 2, true: 3}[*o3], *sw, regsName)
	if inlineOpt.set {
		budget, err := inline.ParseBudget(inlineOpt.raw)
		if err != nil {
			fatal(err)
		}
		mode.Inline = true
		mode.InlineBudget = budget
		mode.Name += fmt.Sprintf(" inline=%d", budget)
	}
	usePGO := *pgo || inlineOpt.set
	if usePGO && *incrPath != "" {
		fmt.Fprintln(os.Stderr, "chowcc: usage error: -pgo/-inline cannot be combined with -incremental")
		os.Exit(exitUsage)
	}

	var prog *chow88.Program
	var err error
	switch {
	case *incrPath != "":
		prog, err = chow88.CompileUnitsIncremental(mode, *incrPath, units...)
	case usePGO:
		prog, err = chow88.CompileUnitsProfiled(mode, units...)
	default:
		prog, err = chow88.CompileUnits(mode, units...)
	}
	if err != nil {
		fatal(err)
	}
	if usePGO {
		fmt.Fprintln(os.Stderr, "chowcc: pgo: measured block frequencies attached from training run")
	}
	if prog.Inline != nil {
		fmt.Fprintf(os.Stderr, "chowcc: %s\n", prog.Inline)
	} else if inlineOpt.set {
		fmt.Fprintln(os.Stderr, "chowcc: inline: discarded (integrated build failed validation)")
	}

	if *doIR {
		fmt.Print(ir.ModuleString(prog.Module))
	}
	if *doPlan {
		printPlan(prog.Plan)
	}
	if *doAsm {
		fmt.Print(prog.Disassemble())
	}
	if explainOpt.set && !*jsonOut {
		fmt.Print(explain.Current().Artifact().Narrative(explainOpt.proc))
	}
	var res *chow88.RunResult
	if *doRun || *jsonOut || !(*doIR || *doPlan || *doAsm || explainOpt.set) {
		res, err = prog.RunWith(chow88.RunOptions{Deadline: *timeout, Engine: *engine})
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			writeJSON(mode.Name, prog, res)
		} else {
			pixie.PrintRun(os.Stdout, os.Stderr, mode.Name, res.Output, &res.Stats)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "\n%s", prog.Report.Table())
		if res != nil && res.Report != nil {
			fmt.Fprintf(os.Stderr, "\n%s", res.Report.Table())
		}
	}
	if *traceOut != "" {
		writeTrace(*traceOut)
	}
}

// writeJSON emits the whole run — mode, program output, trace stats and the
// observability reports — as one machine-readable document.
func writeJSON(mode string, prog *chow88.Program, res *chow88.RunResult) {
	doc := struct {
		Mode           string
		Output         []int64
		Stats          chow88.Stats
		Engine         string
		FallbackReason string             `json:",omitempty"`
		Compile        *obs.CompileReport `json:",omitempty"`
		Run            *obs.RunReport     `json:",omitempty"`
	}{mode, res.Output, res.Stats, res.Engine, res.FallbackReason, prog.Report, res.Report}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

func writeTrace(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := obs.End().WriteTrace(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func printPlan(pp *core.ProgramPlan) {
	fmt.Printf("processing order (depth-first, bottom-up):")
	for _, f := range pp.Order {
		fmt.Printf(" %s", f.Name)
	}
	fmt.Println()
	var names []string
	for f := range pp.Funcs {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := pp.Module.Lookup(name)
		fp := pp.Funcs[f]
		state := "closed"
		if fp.Open {
			state = "OPEN (" + fp.OpenReason + ")"
		}
		fmt.Printf("\n%s: %s\n", name, state)
		fmt.Printf("  registers used: %s (tree: %s)\n", fp.Alloc.UsedRegs, fp.TreeUsed)
		fmt.Printf("  spilled ranges: %d\n", fp.Alloc.Spilled)
		if fp.Summary != nil {
			fmt.Printf("  summary: %s\n", fp.Summary)
		}
		if !fp.Plan.Regs().Empty() {
			for _, r := range fp.Plan.Regs().Regs() {
				var saves, restores []string
				for _, b := range fp.Plan.SaveAt[r] {
					saves = append(saves, b.Name)
				}
				for _, b := range fp.Plan.RestoreAt[r] {
					restores = append(restores, b.Name)
				}
				fmt.Printf("  %s saved at {%s}, restored at {%s}\n",
					r, strings.Join(saves, ","), strings.Join(restores, ","))
			}
		}
	}
}

// fatal prints the structured one-line diagnostic for err and exits with
// its class's code (chow88.ClassifyError, shared with the chowd daemon's
// HTTP error mapping).
func fatal(err error) {
	code, label := chow88.ClassifyError(err)
	fmt.Fprintf(os.Stderr, "chowcc: %s: %v\n", label, err)
	os.Exit(code)
}
