// Command chowtune explores the calling-convention design space the paper
// fixes by fiat: every candidate partition of the 20 allocatable registers
// into caller-saved and callee-saved classes (with 0–6 parameter registers)
// compiles the 13-program suite plus synthetic workloads under mode C with
// the validator on, and is charged the trace's cycles, save/restore
// loads+stores and call-linkage cycles. The winner's save/restore delta is
// attributed through the decision journal to the placement sites
// responsible.
//
// Usage:
//
//	chowtune [-sample n] [-gen n] [-workers n] [-conv spec]...   aggregate sweep
//	chowtune -pgo [-sample n] [-workers n] [-conv spec]...       per-program selection
//
// -sample bounds the candidate set to a deterministic spread of the full
// enumeration (0 sweeps all of it); -conv (repeatable) adds explicit specs
// such as "caller=v1,t0-t9;callee=a0-a3,s0-s8;params=a0-a3". With -pgo each suite
// program trains once under the baseline with the trace profiler on and the
// candidate whose profiled build executes the fewest cycles is selected; the
// default convention competes in every selection, so no program regresses.
//
// Exit codes follow chowcc's classification: a malformed or incoherent -conv
// spec exits with the bad-convention code (12).
package main

import (
	"flag"
	"fmt"
	"os"

	"chow88"
	"chow88/internal/experiments"
	"chow88/internal/mach"
)

// convFlags collects repeated -conv occurrences (specs contain commas, so a
// single comma-separated flag would be ambiguous).
type convFlags []string

func (c *convFlags) String() string { return fmt.Sprint(*c) }
func (c *convFlags) Set(s string) error {
	*c = append(*c, s)
	return nil
}

func main() {
	sample := flag.Int("sample", 32, "candidate conventions sampled from the enumeration (0 = all)")
	gen := flag.Int("gen", 4, "synthetic progen workloads added to the 13-program suite")
	workers := flag.Int("workers", 0, "concurrent candidate measurements (0 = GOMAXPROCS)")
	pgo := flag.Bool("pgo", false, "profile-guided per-program selection instead of the aggregate sweep")
	var conv convFlags
	flag.Var(&conv, "conv", "convention spec added to the candidate set (repeatable)")
	flag.Parse()

	cands := experiments.SampleConventions(*sample)
	for _, s := range conv {
		c, err := mach.ParseConvention(s)
		if err != nil {
			fatal(err)
		}
		cands = append(cands, c)
	}

	if *pgo {
		rows, err := experiments.Tune(cands, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.FormatTune(rows))
		return
	}

	wl, err := experiments.SweepWorkload(*gen)
	if err != nil {
		fatal(err)
	}
	rep, err := experiments.Sweep(cands, wl, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Print(experiments.FormatSweep(rep))
}

// fatal reports err and exits with its classified code, so scripted callers
// can tell a bad -conv spec (exit 12) from an internal failure.
func fatal(err error) {
	code, _ := chow88.ClassifyError(err)
	fmt.Fprintln(os.Stderr, "chowtune:", err)
	os.Exit(code)
}
