package chow88

import (
	"fmt"

	"chow88/internal/core"
	"chow88/internal/explain"
	"chow88/internal/front"
	"chow88/internal/ir"
	"chow88/internal/mcode"
	"chow88/internal/obs"
	"chow88/internal/pipeline"
	"chow88/internal/sim"
)

// CompileProfiled implements the paper's stated future work: "The feedback
// of profile data to the register allocator is a capability that we plan to
// add in the future" (§8). It compiles a training build under the baseline
// mode, executes it once recording per-basic-block execution counts, writes
// those counts back onto the IR as block frequencies (replacing the static
// 10^loop-depth estimate), and recompiles under the requested mode.
//
// With measured frequencies, the allocator's save/restore placement follows
// the program's actual behaviour: the ccom-style failure the paper analyses
// (propagation moving saves into a region that runs more often than the
// region they left) cannot happen, because the priorities now see the real
// relative frequencies of the call-graph levels.
func CompileProfiled(src string, mode Mode) (*Program, error) {
	s := obs.Current()
	snap0 := s.Snap()
	var sp obs.Span
	if s != nil {
		sp = s.Span(obs.PhaseCompile, "CompileProfiled "+mode.Name)
	}
	mod, err := front.Module(src, mode.Optimize, !mode.Sequential)
	if err != nil {
		sp.End()
		return nil, err
	}

	// Training build: the baseline configuration on the same IR.
	train := core.ModeBase()
	train.Optimize = mode.Optimize
	train.ForceOpen = mode.ForceOpen
	train.Validate = mode.Validate
	train.Strict = mode.Strict
	_, trainCode, _, err := pipeline.Build(mod, train)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("training build: %w", err)
	}
	trainRes, err := sim.Run(trainCode, sim.Options{Profile: true})
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("training run: %w", err)
	}
	if err := ApplyProfile(mod, trainCode, trainRes); err != nil {
		sp.End()
		return nil, err
	}

	// The training window closes here; the final build reports separately.
	// The journal restarts too: the training build's decisions describe the
	// baseline throwaway, not the program being shipped.
	explain.Current().Reset()
	var training *obs.Report
	var snap1 obs.Snapshot
	if s != nil {
		training = s.ReportSince(snap0)
		snap1 = s.Snap()
	}

	plan, code, demotions, err := pipeline.Build(mod, mode)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.End()
	p := &Program{Mode: mode, Module: plan.Module, Plan: plan, Code: code, Demotions: demotions, Inline: plan.Inline}
	if s != nil {
		p.Report = &obs.CompileReport{Report: *s.ReportSince(snap1), Training: training, Demotions: demotions}
	}
	attachExplain(p)
	return p, nil
}

// CompileInlined is the profile-guided inlining entry point: a training
// build and run under the baseline mode attach measured block frequencies
// (exactly as CompileProfiled), and the final build then runs the procedure
// integrator on the profiled IR before planning — so call sites are ranked
// by how often they actually executed, not by loop-depth guesses. budget is
// the code-growth allowance in percent of the pre-inlining instruction
// count; 0 selects the pass default.
//
// The training build itself never inlines: it exists to measure the
// program's call structure, which inlining would erase.
func CompileInlined(src string, mode Mode, budget int) (*Program, error) {
	mode.Inline = true
	mode.InlineBudget = budget
	return CompileProfiled(src, mode)
}

// ApplyProfile folds a profiling run's per-instruction execution counts back
// onto the IR module the code was generated from: each basic block receives
// the execution count of its first instruction. The module must be the one
// the code image was generated from (block identities must match).
func ApplyProfile(mod *ir.Module, code *mcode.Program, res *sim.Result) error {
	if res.InstrCounts == nil {
		return fmt.Errorf("profile: run was not executed with Profile enabled")
	}
	for _, fi := range code.Funcs {
		if fi.Extern {
			continue
		}
		f := mod.Lookup(fi.Name)
		if f == nil {
			return fmt.Errorf("profile: image function %s not in module", fi.Name)
		}
		byID := make(map[int]*ir.Block, len(f.Blocks))
		for _, b := range f.Blocks {
			byID[b.ID] = b
		}
		for _, span := range fi.Blocks {
			b, ok := byID[span.BlockID]
			if !ok {
				return fmt.Errorf("profile: %s has no block %d", fi.Name, span.BlockID)
			}
			if span.Start < len(res.InstrCounts) {
				b.SetProfile(res.InstrCounts[span.Start])
			}
		}
	}
	return nil
}

// ClearProfile removes attached profile data, restoring the static
// loop-depth frequency estimates.
func ClearProfile(mod *ir.Module) {
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			b.ClearProfile()
		}
	}
}
